"""Tests for array ops, blocked matrices and conjugate gradient."""

import numpy as np
import pytest

from repro import Database
from repro.errors import ConvergenceError, ValidationError
from repro.support import (
    BlockedMatrix,
    array_add,
    array_dot,
    array_fill,
    array_mean,
    array_stddev,
    conjugate_gradient,
    conjugate_gradient_sql,
    cosine_similarity,
    install_array_ops,
    normalize,
    row_chunks,
    squared_dist,
)
from repro.support.matrix_ops import matrix_from_rows


class TestArrayOps:
    def test_elementwise_ops(self):
        np.testing.assert_array_equal(array_add([1, 2], [3, 4]), [4, 6])
        assert array_dot([1, 2], [3, 4]) == 11.0
        assert array_mean([1, 2, 3]) == 2.0
        assert array_stddev([1.0, 2.0, 3.0]) == pytest.approx(1.0)
        np.testing.assert_array_equal(array_fill(3, 2.0), [2.0, 2.0, 2.0])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValidationError):
            array_add([1, 2], [1, 2, 3])

    def test_normalize_and_distances(self):
        np.testing.assert_allclose(normalize([3.0, 4.0]), [0.6, 0.8])
        np.testing.assert_array_equal(normalize([0.0, 0.0]), [0.0, 0.0])
        assert squared_dist([0, 0], [3, 4]) == 25.0
        assert cosine_similarity([1, 0], [1, 0]) == pytest.approx(1.0)
        assert cosine_similarity([1, 0], [0, 1]) == pytest.approx(0.0)

    def test_empty_array_errors(self):
        with pytest.raises(ValidationError):
            array_mean([])

    def test_install_array_ops_registers_udfs(self):
        db = Database()
        install_array_ops(db)
        assert db.query_scalar("SELECT madlib_array_dot(ARRAY[1,2], ARRAY[3,4])") == 11.0
        assert db.query_scalar("SELECT madlib_squared_dist(ARRAY[0,0], ARRAY[3,4])") == 25.0


class TestBlockedMatrix:
    def test_round_trip_and_blocks(self):
        rng = np.random.default_rng(2)
        matrix = rng.normal(size=(10, 7))
        blocked = BlockedMatrix.from_dense(matrix, block_size=4)
        np.testing.assert_allclose(blocked.to_dense(), matrix)
        assert blocked.num_blocks == 6  # ceil(10/4) * ceil(7/4)

    def test_multiply_vector_and_transpose(self):
        rng = np.random.default_rng(3)
        matrix = rng.normal(size=(8, 5))
        vector = rng.normal(size=5)
        blocked = BlockedMatrix.from_dense(matrix, block_size=3)
        np.testing.assert_allclose(blocked.multiply_vector(vector), matrix @ vector, rtol=1e-10)
        np.testing.assert_allclose(blocked.transpose().to_dense(), matrix.T)

    def test_block_multiply_matches_numpy(self):
        rng = np.random.default_rng(4)
        a = rng.normal(size=(6, 5))
        b = rng.normal(size=(5, 7))
        product = BlockedMatrix.from_dense(a, 2).multiply(BlockedMatrix.from_dense(b, 2))
        np.testing.assert_allclose(product.to_dense(), a @ b, rtol=1e-10)

    def test_dimension_mismatch_raises(self):
        a = BlockedMatrix.from_dense(np.ones((2, 3)))
        b = BlockedMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(ValidationError):
            a.multiply(b)
        with pytest.raises(ValidationError):
            a.multiply_vector(np.ones(5))

    def test_store_and_load_through_database(self):
        db = Database(num_segments=2)
        rng = np.random.default_rng(5)
        matrix = rng.normal(size=(9, 4))
        blocked = BlockedMatrix.from_dense(matrix, block_size=3)
        blocked.store(db, "blocks")
        loaded = BlockedMatrix.load(db, "blocks", 9, 4, block_size=3)
        np.testing.assert_allclose(loaded.to_dense(), matrix)

    def test_row_chunks_and_matrix_from_rows(self):
        matrix = np.arange(12, dtype=float).reshape(6, 2)
        chunks = list(row_chunks(matrix, 4))
        assert [start for start, _ in chunks] == [0, 4]
        rebuilt = matrix_from_rows([(i, matrix[i]) for i in range(6)], 6, 2)
        np.testing.assert_array_equal(rebuilt, matrix)


class TestConjugateGradient:
    def test_solves_spd_system(self):
        rng = np.random.default_rng(6)
        basis = rng.normal(size=(6, 6))
        matrix = basis @ basis.T + 6 * np.eye(6)
        expected = rng.normal(size=6)
        rhs = matrix @ expected
        result = conjugate_gradient(lambda v: matrix @ v, rhs, tolerance=1e-10)
        assert result.converged
        np.testing.assert_allclose(result.solution, expected, rtol=1e-6)
        assert result.residual_history[-1] <= result.residual_history[0]

    def test_non_spd_raises(self):
        matrix = np.array([[1.0, 0.0], [0.0, -1.0]])
        with pytest.raises(ValidationError):
            conjugate_gradient(lambda v: matrix @ v, np.array([1.0, 1.0]))

    def test_iteration_budget_exhaustion_raises(self):
        matrix = np.diag([1.0, 1e6])
        with pytest.raises(ConvergenceError):
            conjugate_gradient(lambda v: matrix @ v, np.array([1.0, 1.0]),
                               tolerance=1e-15, max_iterations=1)

    def test_sql_variant_matches_in_memory(self):
        db = Database(num_segments=2)
        rng = np.random.default_rng(7)
        basis = rng.normal(size=(5, 5))
        matrix = basis @ basis.T + 5 * np.eye(5)
        rhs = rng.normal(size=5)
        db.create_table("a_rows", [("id", "integer"), ("row", "double precision[]")])
        db.load_rows("a_rows", [(i, matrix[i]) for i in range(5)])
        result = conjugate_gradient_sql(db, "a_rows", "row", rhs, tolerance=1e-10)
        np.testing.assert_allclose(result.solution, np.linalg.solve(matrix, rhs), rtol=1e-6)
