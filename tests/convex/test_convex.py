"""Tests for the SGD/convex-optimization framework (Table 2 models)."""

import numpy as np
import pytest

from repro import Database
from repro.convex import (
    HingeObjective,
    LassoObjective,
    LeastSquaresObjective,
    LogisticObjective,
    RecommendationObjective,
    TABLE2_OBJECTIVES,
    install_igd,
    train,
    train_crf_labeling,
    train_lasso,
    train_least_squares,
    train_logistic,
    train_recommendation,
    train_svm,
)
from repro.datasets import (
    load_logistic_table,
    load_regression_table,
    make_logistic,
    make_ratings,
    make_regression,
    make_tag_corpus,
)
from repro.errors import ValidationError


class TestObjectives:
    def test_table2_catalogue_is_complete(self):
        assert set(TABLE2_OBJECTIVES) == {
            "Least Squares", "Lasso", "Logistic Regression",
            "Classification (SVM)", "Recommendation", "Labeling (CRF)",
        }

    def test_least_squares_gradient_decreases_loss(self):
        objective = LeastSquaresObjective(2)
        model = objective.initial_model()
        row = (3.0, np.array([1.0, 1.0]))
        before = objective.loss(model, row)
        objective.apply_gradient(model, row, 0.1)
        assert objective.loss(model, row) < before

    def test_lasso_soft_thresholding_produces_sparsity(self):
        objective = LassoObjective(3, mu=10.0)
        model = np.array([0.001, -0.002, 0.003])
        objective.apply_gradient(model, (0.0, np.zeros(3)), 0.01)
        np.testing.assert_array_equal(model, np.zeros(3))

    def test_logistic_loss_is_stable_for_large_margins(self):
        objective = LogisticObjective(1)
        model = np.array([100.0])
        assert objective.loss(model, (1.0, np.array([1.0]))) < 1e-10
        assert objective.loss(model, (-1.0, np.array([1.0]))) > 50

    def test_hinge_no_update_outside_margin(self):
        objective = HingeObjective(2, regularization=0.0)
        model = np.array([10.0, 0.0])
        before = model.copy()
        objective.apply_gradient(model, (1.0, np.array([1.0, 0.0])), 0.1)
        np.testing.assert_array_equal(model, before)

    def test_recommendation_gradient_touches_only_one_user_and_item(self):
        objective = RecommendationObjective(4, 5, 2, mu=0.0, seed=0)
        model = objective.initial_model()
        before = model.copy()
        objective.apply_gradient(model, (1, 2, 3.0), 0.1)
        changed = np.nonzero(model != before)[0]
        # Only user 1's two factors and item 2's two factors may change.
        expected_indices = set(range(2, 4)) | set(range(4 * 2 + 2 * 2, 4 * 2 + 3 * 2))
        assert set(changed.tolist()) <= expected_indices

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValidationError):
            LeastSquaresObjective(0)
        with pytest.raises(ValidationError):
            RecommendationObjective(0, 5, 2)


class TestSGDDriver:
    def test_least_squares_recovers_coefficients(self, regression_db):
        data = regression_db.regression_data
        result = train_least_squares(regression_db, "regr", max_epochs=25)
        np.testing.assert_allclose(result.model, data.coefficients, atol=0.15)
        assert result.loss_history[-1] <= result.loss_history[0]
        assert result.objective_name == "Least Squares"

    def test_lasso_shrinks_relative_to_least_squares(self, regression_db):
        plain = train_least_squares(regression_db, "regr", max_epochs=15)
        shrunk = train_lasso(regression_db, "regr", mu=0.5, max_epochs=15)
        assert np.abs(shrunk.model).sum() < np.abs(plain.model).sum()

    def test_logistic_predicts_labels(self, logistic_db):
        data = logistic_db.logistic_data
        result = train_logistic(logistic_db, "logi", max_epochs=20)
        predictions = (data.features @ result.model > 0).astype(float)
        oracle = float(np.mean((data.features @ data.coefficients > 0) == (data.labels > 0)))
        accuracy = float(np.mean(predictions == data.labels))
        assert accuracy >= oracle - 0.08

    def test_svm_separates_separable_data(self, db4):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(400, 2))
        y = np.where(x[:, 0] - x[:, 1] > 0, 1.0, -1.0)
        db4.create_table("sep", [("id", "integer"), ("x", "double precision[]"), ("y", "double precision")])
        db4.load_rows("sep", [(i, x[i], float(y[i])) for i in range(400)])
        result = train_svm(db4, "sep", max_epochs=25)
        accuracy = float(np.mean(np.where(x @ result.model > 0, 1.0, -1.0) == y))
        assert accuracy > 0.9

    def test_recommendation_reduces_rmse(self, db4):
        triples = make_ratings(25, 20, 3, density=0.5, seed=2)
        db4.create_table(
            "ratings",
            [("user_id", "integer"), ("item_id", "integer"), ("rating", "double precision")],
        )
        db4.load_rows("ratings", triples)
        model = train_recommendation(db4, "ratings", rank=3, max_epochs=40, tolerance=1e-7)
        baseline = float(np.sqrt(np.mean([r * r for _, _, r in triples])))
        assert model.rmse(triples) < baseline
        assert model.result.loss_decrease() > 0.1

    def test_crf_labeling_loss_decreases(self, db4):
        corpus = make_tag_corpus(40, seed=3)
        result = train_crf_labeling(db4, corpus, max_epochs=3)
        assert result.objective_name == "Labeling (CRF)"
        assert result.loss_history[-1] < result.loss_history[0]

    def test_all_six_table2_models_run_through_one_driver(self, db4):
        # The headline claim of Section 5.1: every Table 2 model works through
        # the same abstraction. Keep sizes tiny; this is a smoke-level check.
        regression = make_regression(150, 3, seed=4)
        load_regression_table(db4, "t2_regr", regression)
        classification = make_logistic(150, 3, seed=5, labels_plus_minus=True)
        load_logistic_table(db4, "t2_class", classification)
        ratings = make_ratings(10, 10, 2, density=0.5, seed=6)
        db4.create_table(
            "t2_ratings",
            [("user_id", "integer"), ("item_id", "integer"), ("rating", "double precision")],
        )
        db4.load_rows("t2_ratings", ratings)
        corpus = make_tag_corpus(10, seed=7)

        results = [
            train_least_squares(db4, "t2_regr", max_epochs=3),
            train_lasso(db4, "t2_regr", max_epochs=3),
            train_logistic(db4, "t2_class", max_epochs=3),
            train_svm(db4, "t2_class", max_epochs=3),
            train_recommendation(db4, "t2_ratings", rank=2, max_epochs=3).result,
            train_crf_labeling(db4, corpus, max_epochs=2),
        ]
        assert {result.objective_name for result in results} == set(TABLE2_OBJECTIVES)
        assert all(result.num_epochs >= 1 for result in results)

    def test_parallel_and_serial_epochs_converge_to_similar_models(self):
        data = make_regression(400, 3, noise=0.05, seed=8)
        models = []
        for segments in (1, 4):
            db = Database(num_segments=segments)
            load_regression_table(db, "regr", data)
            models.append(train_least_squares(db, "regr", max_epochs=25).model)
        # Model averaging across segments changes the trajectory but both
        # should land near the true coefficients.
        np.testing.assert_allclose(models[0], data.coefficients, atol=0.2)
        np.testing.assert_allclose(models[1], data.coefficients, atol=0.2)

    def test_empty_table_rejected(self, db):
        db.create_table("e", [("y", "double precision"), ("x", "double precision[]")])
        with pytest.raises(ValidationError):
            train_least_squares(db, "e")

    def test_install_igd_registers_aggregate(self, regression_db):
        install_igd(regression_db, LeastSquaresObjective(3), name="my_igd")
        assert regression_db.catalog.has_aggregate("my_igd")
        record = regression_db.query_scalar(
            "SELECT my_igd(NULL, 0.01, y, x) FROM regr"
        )
        assert record["n"] == 400
