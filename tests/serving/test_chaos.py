"""Seeded chaos: concurrent clients vs the full fault arsenal.

Each seed drives four concurrent clients through a mixed workload while
worker crashes, hangs, pickle failures, truncated sends, client stalls and
abrupt disconnects fire at deterministic points.  ``ChaosReport.ok``
bundles the invariants: no deadlock (every thread joins), graceful drain,
readers/writer lock idle at the end, ``Table._data_version`` only ever
moves forward, no forbidden error codes, and the committed data is
byte-identical to a fault-free replay of the acked (plus resolved
in-doubt) writes.

Tier-1 runs a handful of seeds; set ``REPRO_CHAOS_SEEDS=25`` (or run
``benchmarks/bench_chaos.py --seeds 25``) for the full acceptance sweep.
"""

from __future__ import annotations

import os

import pytest

from repro.engine.chaos import run_chaos
from repro.engine.faults import FaultInjector

_SEEDS = int(os.environ.get("REPRO_CHAOS_SEEDS", "4"))


@pytest.mark.parametrize("seed", range(1, _SEEDS + 1))
def test_chaos_seed_holds_invariants(seed):
    report = run_chaos(seed)
    assert report.ok, f"{report.summary()}\nerrors: {report.errors}"


def test_chaos_actually_injects_faults():
    """The harness is not vacuous: the default arsenal fires on seed 1."""
    report = run_chaos(1)
    assert report.ok, report.errors
    assert sum(report.faults_fired.values()) >= 3, report.faults_fired
    assert report.statements > 0


def test_chaos_fault_free_control():
    """With nothing armed the same workload runs clean: no reconnects, no
    truncated sends, and the replay check still holds."""
    report = run_chaos(1, faults=FaultInjector(1))  # armed with nothing
    assert report.ok, report.errors
    assert report.faults_fired == {}
    assert report.reconnects == 0
    assert report.in_doubt_writes == 0
    assert report.server_stats.get("truncated_sends", 0) == 0
