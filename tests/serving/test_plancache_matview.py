"""Plan cache and serving vs materialized views.

A cached plan that scans a view snapshots the view's *content version* and
must invalidate on any change — incremental delta folds and full refreshes
alike — because unlike base-table drift (which only skews cost estimates), a
view-version bump means the plan's source rows changed.  The serving layer
lists views in its ``stats`` op and its read-snapshot validation must not
misfire when a read of a stale view lazily recomputes it.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.engine.serving import ServerThread, ServingClient


VIEW_SQL = "SELECT k, count(*) AS n, sum(v) AS total FROM t GROUP BY k"


def _make_db():
    db = Database(num_segments=2, plan_cache=64)
    db.execute("CREATE TABLE t (k INTEGER, v INTEGER)")
    db.load_rows("t", [(i % 4, i) for i in range(40)])
    db.execute(f"CREATE MATERIALIZED VIEW mv AS {VIEW_SQL}")
    return db


def test_delta_fold_invalidates_cached_view_plan():
    db = _make_db()
    query = "SELECT * FROM mv WHERE n > 1"
    first = db.execute(query)
    db.execute(query)  # warm: second execution hits the cache
    stats = db.plan_cache.stats()
    assert stats["hits"] >= 1
    invalidations_before = stats["invalidations"]

    # An incremental maintenance bump (INSERT folds the delta in O(delta))
    # must invalidate the cached plan, however small the delta is.
    result = db.execute("INSERT INTO t VALUES (1, 1000)")
    assert result.stats.matview_deltas_applied == 1
    after = db.execute(query)
    assert db.plan_cache.stats()["invalidations"] == invalidations_before + 1
    assert repr(after.rows) != repr(first.rows)  # fresh data actually served


def test_refresh_invalidates_cached_view_plan():
    db = _make_db()
    query = "SELECT * FROM mv"
    db.execute(query)
    db.execute(query)
    invalidations_before = db.plan_cache.stats()["invalidations"]
    db.execute("REFRESH MATERIALIZED VIEW mv")
    db.execute(query)
    assert db.plan_cache.stats()["invalidations"] == invalidations_before + 1


def test_stale_view_read_serves_fresh_rows_through_cache():
    db = _make_db()
    query = "SELECT * FROM mv"
    db.execute(query)
    db.execute(query)
    db.execute("DELETE FROM t WHERE k = 0")  # leaves the view stale
    rows = db.execute(query).rows
    assert repr(rows) == repr(db.execute(VIEW_SQL).rows)


def test_prepared_view_statement_stays_correct_across_maintenance():
    db = _make_db()
    handle = db.prepare("SELECT * FROM mv")
    before = handle.execute().rows
    db.execute("INSERT INTO t VALUES (2, 77)")
    after = handle.execute().rows
    assert repr(after) != repr(before)
    assert repr(after) == repr(db.execute(VIEW_SQL).rows)


def test_serving_stats_lists_matviews_and_reads_validate():
    db = _make_db()
    server = ServerThread(db).start()
    try:
        client = ServingClient(server.host, server.port)
        try:
            # A view read over the wire: goes through the read path with
            # snapshot validation; a stale view recompute must not trip it.
            db.execute("DELETE FROM t WHERE k = 3")
            response = client.query("SELECT * FROM mv")
            assert repr(response.rows) == repr(
                [tuple(r) for r in db.execute(VIEW_SQL).rows]
            )
            stats = client.stats()
            (entry,) = stats["matviews"]
            assert entry["matviewname"] == "mv"
            assert entry["definition"] == VIEW_SQL
            assert entry["strategy"] == "incremental"
            assert entry["stale"] is False
        finally:
            client.close()
    finally:
        server.stop()
