"""Shutdown-ordering regressions: Database.close(), __del__, server stop.

The bugs these pin down: ``Database.close()`` used to race itself when
called from two threads (or from ``close()`` + ``__del__``), and a server
stopping while statements were in flight could tear the worker pool down
under a live statement.  The fixed ordering is: close() hands the pool off
under a lock (idempotent, thread-safe), ``__del__`` delegates to close()
and never raises, and ``DatabaseServer.stop()`` drains connections and
joins its thread pool *before* touching the database.
"""

from __future__ import annotations

import gc
import multiprocessing
import threading
import time

from repro import Database
from repro.engine.serving import ServerThread, ServingClient


def _parallel_db() -> Database:
    db = Database(num_segments=2, parallel=2)
    db.execute("CREATE TABLE t (id INTEGER, v DOUBLE PRECISION)")
    db.load_rows("t", [(i, float(i)) for i in range(200)])
    # Force the worker pool to actually start.
    db.execute("SELECT sum(v) FROM t")
    return db


def test_close_is_idempotent():
    db = _parallel_db()
    db.close()
    db.close()  # second close must be a no-op, not an error
    db.close()


def test_close_then_del_does_not_raise():
    db = _parallel_db()
    db.close()
    del db
    gc.collect()  # __del__ after close: nothing left to do, nothing raised


def test_del_without_close_shuts_the_pool_down():
    db = _parallel_db()
    del db
    gc.collect()
    deadline = time.time() + 10.0
    while time.time() < deadline and multiprocessing.active_children():
        time.sleep(0.1)
    assert not multiprocessing.active_children(), "leaked worker processes"


def test_concurrent_close_from_many_threads():
    db = _parallel_db()
    errors: list = []

    def closer():
        try:
            db.close()
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=closer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors


def test_close_leaves_no_worker_processes():
    db = _parallel_db()
    db.close()
    deadline = time.time() + 10.0
    while time.time() < deadline and multiprocessing.active_children():
        time.sleep(0.1)
    assert not multiprocessing.active_children(), "leaked worker processes"


def test_queries_still_work_after_close():
    """close() only tears down the worker pool; in-process execution (the
    sequential fallback) keeps working, as documented."""
    db = _parallel_db()
    db.close()
    assert db.execute("SELECT count(*) FROM t").rows[0][0] == 200


def test_server_stop_drains_before_database_close():
    """stop(close_database=True) must finish in-flight statements, join the
    worker threads, and only then close the database."""
    db = _parallel_db()
    server = ServerThread(db, max_concurrent=4, max_queue=8).start()
    clients = [ServingClient(server.host, server.port) for _ in range(3)]
    try:
        for client in clients:
            assert client.query("SELECT count(*) FROM t").scalar() == 200
    finally:
        for client in clients:
            client.close()
    server.stop(close_database=True)
    # Idempotent all the way down: stopping again and re-closing are no-ops.
    server.stop(close_database=True)
    db.close()
    deadline = time.time() + 10.0
    while time.time() < deadline and multiprocessing.active_children():
        time.sleep(0.1)
    assert not multiprocessing.active_children(), "leaked worker processes"


def test_server_stop_with_connected_clients():
    """Clients still connected at stop time are disconnected cleanly."""
    db = Database(plan_cache=16)
    db.execute("CREATE TABLE s (a INTEGER)")
    db.execute("INSERT INTO s VALUES (1)")
    server = ServerThread(db).start()
    client = ServingClient(server.host, server.port)
    assert client.query("SELECT a FROM s").scalar() == 1
    server.stop()
    # The dangling client sees a closed connection, not a hang.
    try:
        client.query("SELECT a FROM s")
        raise AssertionError("expected a connection error")
    except (ConnectionError, OSError):
        pass
    finally:
        client.close()
    # The database itself is untouched (stop() without close_database).
    assert db.execute("SELECT a FROM s").rows == [(1,)]
