"""Plan-cache correctness: parity, fuzzing, and invalidation.

A cached plan must be *observationally invisible*: any query answered
through the cache (including the indexed point-lookup fast path) must return
byte-identical columns and rows to a twin database with no cache at all.
This suite fuzzes ~200 randomized queries across both, then checks the
invalidation triggers one by one — DDL (catalog version), ANALYZE, and DML
drift past the auto-analyze threshold — plus the normalization subtleties
(LIMIT/ordinal literals stay unparameterized; synthetic parameter names are
reserved).
"""

from __future__ import annotations

import random

import pytest

from repro import Database
from repro.engine.plancache import (
    SYNTHETIC_PREFIX,
    normalize_statement,
    statement_is_read_only,
)
from repro.engine.parser import parse_statement


def _make_pair(rows, *, num_segments: int = 3):
    """Twin databases, identical contents: plan-cached vs uncached."""
    pair = []
    for capacity in (128, 0):
        db = Database(num_segments=num_segments, plan_cache=capacity)
        db.execute(
            "CREATE TABLE p (id INTEGER, k INTEGER, v DOUBLE PRECISION, label TEXT)"
        )
        db.load_rows("p", rows)
        db.execute("CREATE INDEX p_id ON p (id)")
        db.execute("CREATE INDEX p_k ON p USING hash (k)")
        db.execute("ANALYZE p")
        pair.append(db)
    return pair


def _random_rows(rng, count, null_fraction=0.15):
    rows = []
    for i in range(count):
        k = rng.randrange(0, 25) if rng.random() > null_fraction else None
        v = round(rng.uniform(-5, 5), 3) if rng.random() > null_fraction else None
        label = rng.choice(["a", "b", "c", "d"]) if rng.random() > null_fraction else None
        rows.append((i, k, v, label))
    return rows


# ---------------------------------------------------------------------------
# Fuzzed parity: ~200 randomized queries, cached == uncached, twice each
# ---------------------------------------------------------------------------

_TEMPLATES = [
    "SELECT * FROM p WHERE id = {id}",
    "SELECT id, v FROM p WHERE id = {id}",
    "SELECT label FROM p WHERE id = {id}",
    "SELECT * FROM p WHERE k = {k}",
    "SELECT * FROM p WHERE k = {k} AND v > {v}",
    "SELECT id FROM p WHERE v > {v} ORDER BY id",
    "SELECT id FROM p WHERE v > {v} ORDER BY 1 LIMIT {limit}",
    "SELECT id, v FROM p WHERE id >= {id} ORDER BY v NULLS LAST LIMIT {limit}",
    "SELECT count(*), sum(v) FROM p WHERE k = {k}",
    "SELECT label, count(*), avg(v) FROM p WHERE id < {id} GROUP BY label ORDER BY label NULLS LAST",
    "SELECT DISTINCT label FROM p WHERE k > {k} ORDER BY label NULLS FIRST",
    "SELECT id, coalesce(v, 0.0) * 2 FROM p WHERE id = {id}",
    "SELECT upper(label) FROM p WHERE label = '{label}' ORDER BY id LIMIT {limit}",
    "SELECT id FROM p WHERE id BETWEEN {id} AND {id2} ORDER BY id DESC",
    "SELECT k, count(*) FROM p GROUP BY k ORDER BY 2 DESC, 1 NULLS LAST LIMIT {limit}",
    "SELECT id FROM p WHERE label IN ('{label}', 'zz') ORDER BY id OFFSET {limit}",
    "SELECT CASE WHEN v > {v} THEN 'hi' ELSE 'lo' END, count(*) FROM p GROUP BY 1 ORDER BY 1",
]


def _render(rng, template):
    ident = rng.randrange(-5, 130)
    return template.format(
        id=ident,
        id2=ident + rng.randrange(0, 40),
        k=rng.randrange(-2, 27),
        v=round(rng.uniform(-6, 6), 2),
        label=rng.choice(["a", "b", "c", "d", "nope"]),
        limit=rng.randrange(1, 8),
    )


def test_fuzz_parity_200_queries():
    rng = random.Random(0xC0FFEE)
    cached, uncached = _make_pair(_random_rows(rng, 120))
    for i in range(200):
        query = _render(rng, rng.choice(_TEMPLATES))
        left = cached.execute(query)
        right = uncached.execute(query)
        assert left.columns == right.columns, query
        assert left.rows == right.rows, query
        # A second run comes out of the cache and must still be identical.
        again = cached.execute(query)
        assert again.columns == right.columns and again.rows == right.rows, query
    stats = cached.plan_cache.stats()
    assert stats["hits"] >= 200  # every repeat (and template reuse) hit


def test_fuzz_parity_with_parameters():
    rng = random.Random(17)
    cached, uncached = _make_pair(_random_rows(rng, 100))
    queries = [
        ("SELECT * FROM p WHERE id = %(a)s", lambda: {"a": rng.randrange(0, 110)}),
        (
            "SELECT id FROM p WHERE k = %(a)s AND v > %(b)s ORDER BY id",
            lambda: {"a": rng.randrange(0, 25), "b": round(rng.uniform(-5, 5), 2)},
        ),
        (
            "SELECT count(*) FROM p WHERE label = %(l)s",
            lambda: {"l": rng.choice(["a", "b", "c", "d"])},
        ),
        # Float parameter probing an integer column through the hash index.
        ("SELECT * FROM p WHERE id = %(a)s", lambda: {"a": float(rng.randrange(0, 110))}),
    ]
    for _ in range(60):
        sql, make_params = rng.choice(queries)
        params = make_params()
        assert cached.execute(sql, params).rows == uncached.execute(sql, params).rows, (
            sql,
            params,
        )


def test_parity_under_interleaved_dml():
    rng = random.Random(5)
    cached, uncached = _make_pair(_random_rows(rng, 80))
    checks = [
        "SELECT * FROM p WHERE id = 17",
        "SELECT count(*), sum(v) FROM p",
        "SELECT label, count(*) FROM p GROUP BY label ORDER BY label NULLS LAST",
    ]
    steps = [
        "UPDATE p SET v = v + 1 WHERE k = 3",
        "DELETE FROM p WHERE id >= 70",
        "INSERT INTO p VALUES (500, 3, 0.5, 'z')",
        "UPDATE p SET label = 'w' WHERE id < 5",
    ]
    for step in steps:
        cached.execute(step)
        uncached.execute(step)
        for query in checks:
            assert cached.execute(query).rows == uncached.execute(query).rows, (step, query)


# ---------------------------------------------------------------------------
# Invalidation triggers
# ---------------------------------------------------------------------------


def test_ddl_invalidates_cached_plans():
    rng = random.Random(2)
    cached, uncached = _make_pair(_random_rows(rng, 60))
    query = "SELECT * FROM p WHERE id = 30"
    assert cached.execute(query).rows == uncached.execute(query).rows
    before = cached.plan_cache.stats()["invalidations"]
    # Any catalog change bumps the catalog version: the cached plan replans.
    cached.execute("CREATE TABLE unrelated (x INTEGER)")
    uncached.execute("CREATE TABLE unrelated (x INTEGER)")
    assert cached.execute(query).rows == uncached.execute(query).rows
    assert cached.plan_cache.stats()["invalidations"] > before


def test_drop_index_replans_to_scan():
    rng = random.Random(3)
    cached, _ = _make_pair(_random_rows(rng, 60))
    query = "SELECT * FROM p WHERE id = 10"
    cached.execute(query)
    with_index = cached.execute(query)
    assert cached.last_stats.scan_details[0].access == "index"
    cached.execute("DROP INDEX p_id")
    after_drop = cached.execute(query)
    assert after_drop.rows == with_index.rows
    # The replanned statement fell back to a scan — no stale index plan ran.
    assert cached.last_stats.scan_details[0].access != "index"


def test_analyze_invalidates_cached_plans():
    rng = random.Random(4)
    cached, _ = _make_pair(_random_rows(rng, 60))
    query = "SELECT count(*) FROM p WHERE k = 5"
    cached.execute(query)
    cached.execute(query)
    before = cached.plan_cache.stats()["invalidations"]
    cached.execute("ANALYZE p")  # statistics snapshot bumps the catalog version
    cached.execute(query)
    assert cached.plan_cache.stats()["invalidations"] > before


def test_dml_drift_invalidates_cached_plans():
    db = Database(plan_cache=32)
    db.execute("CREATE TABLE d (id INTEGER, v INTEGER)")
    db.load_rows("d", [(i, i) for i in range(50)])
    query = "SELECT count(*) FROM d WHERE v >= 0"
    assert db.execute(query).rows[0][0] == 50
    before = db.plan_cache.stats()["invalidations"]
    # Grow the table far past the drift threshold (max(64, 20% of rows)).
    db.load_rows("d", [(i, i) for i in range(50, 550)])
    assert db.execute(query).rows[0][0] == 550
    assert db.plan_cache.stats()["invalidations"] > before


def test_small_dml_does_not_thrash_the_cache():
    db = Database(plan_cache=32)
    db.execute("CREATE TABLE d (id INTEGER, v INTEGER)")
    db.load_rows("d", [(i, i) for i in range(1000)])
    query = "SELECT count(*) FROM d WHERE v >= %(cut)s"
    db.execute(query, {"cut": 0})
    before = db.plan_cache.stats()
    # A handful of single-row inserts stays under the drift threshold: the
    # cached plan keeps serving (with exact results — counts include new rows).
    for i in range(5):
        db.execute("INSERT INTO d VALUES (%(i)s, %(i)s)", {"i": 1000 + i})
        assert db.execute(query, {"cut": 0}).rows[0][0] == 1001 + i
    after = db.plan_cache.stats()
    assert after["invalidations"] == before["invalidations"]
    assert after["hits"] > before["hits"]


# ---------------------------------------------------------------------------
# Normalization subtleties
# ---------------------------------------------------------------------------


def test_limit_and_ordinal_literals_stay_unparameterized():
    # LIMIT requires a raw number token and ORDER BY 2 is an ordinal: both
    # must survive in the fingerprint, so different values => different keys.
    one = normalize_statement("SELECT a, b FROM t ORDER BY 2 LIMIT 3")
    two = normalize_statement("SELECT a, b FROM t ORDER BY 2 LIMIT 4")
    other = normalize_statement("SELECT a, b FROM t ORDER BY 1 LIMIT 3")
    assert one.fingerprint != two.fingerprint
    assert one.fingerprint != other.fingerprint
    assert "limit 3" in one.fingerprint
    # WHERE literals, by contrast, do get parameterized and share a key.
    lhs = normalize_statement("SELECT a FROM t WHERE a = 5")
    rhs = normalize_statement("SELECT a FROM t WHERE a = 99")
    assert lhs.fingerprint == rhs.fingerprint
    assert lhs.values != rhs.values


def test_synthetic_parameter_names_are_reserved():
    db = Database(plan_cache=8)
    db.execute("CREATE TABLE r (x INTEGER)")
    db.execute("INSERT INTO r VALUES (1), (2)")
    # A user parameter in the reserved namespace bypasses the cache but still
    # executes correctly.
    result = db.execute("SELECT x FROM r WHERE x = %(__c0)s", {"__c0": 2})
    assert result.rows == [(2,)]
    normalized = normalize_statement("SELECT x FROM r WHERE x = %(__c0)s")
    assert normalized is None
    assert SYNTHETIC_PREFIX == "__c"


def test_ddl_statements_are_not_cached():
    assert normalize_statement("CREATE TABLE z (a INTEGER)") is None
    assert normalize_statement("DROP TABLE z") is None
    assert normalize_statement("ANALYZE p") is None
    assert normalize_statement("EXPLAIN SELECT 1") is None


def test_statement_read_only_classification():
    assert statement_is_read_only(parse_statement("SELECT 1"))
    assert statement_is_read_only(parse_statement("EXPLAIN SELECT 1"))
    assert statement_is_read_only(parse_statement("EXPLAIN ANALYZE SELECT 1"))
    assert not statement_is_read_only(
        parse_statement("EXPLAIN ANALYZE DELETE FROM p WHERE id = 1")
    )
    assert not statement_is_read_only(parse_statement("INSERT INTO p VALUES (1, 1, 1.0, 'a')"))
    assert not statement_is_read_only(parse_statement("UPDATE p SET v = 0"))


# ---------------------------------------------------------------------------
# Prepared statements and cache mechanics
# ---------------------------------------------------------------------------


def test_prepared_statement_parity_and_replan():
    rng = random.Random(6)
    cached, uncached = _make_pair(_random_rows(rng, 90))
    prepared = cached.prepare("SELECT id, v FROM p WHERE id = %(id)s")
    assert prepared.parameter_names == ["id"]
    for key in (0, 7, 42, 89, 200, -1):
        assert (
            prepared.execute({"id": key}).rows
            == uncached.execute("SELECT id, v FROM p WHERE id = %(id)s", {"id": key}).rows
        )
    # DDL between executions: the handle revalidates and replans transparently.
    cached.execute("DROP INDEX p_id")
    uncached.execute("DROP INDEX p_id")
    assert (
        prepared.execute({"id": 42}).rows
        == uncached.execute("SELECT id, v FROM p WHERE id = %(id)s", {"id": 42}).rows
    )


def test_lru_eviction_keeps_capacity():
    db = Database(plan_cache=4)
    db.execute("CREATE TABLE e (a INTEGER)")
    db.execute("INSERT INTO e VALUES (1)")
    # LIMIT literals are frozen into the fingerprint: 8 distinct cache keys.
    for limit in range(1, 9):
        db.execute(f"SELECT a FROM e LIMIT {limit}")
    assert db.plan_cache.stats()["entries"] <= 4


def test_cache_disabled_is_the_default():
    db = Database()
    assert db.plan_cache is None
    db.execute("CREATE TABLE n (a INTEGER)")
    db.execute("INSERT INTO n VALUES (3)")
    assert db.execute("SELECT a FROM n").rows == [(3,)]
