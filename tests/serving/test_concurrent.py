"""Concurrency stress for the serving layer.

The contract under test (``docs/serving.md``): concurrent read statements
share the database; write statements exclude everything; every read sees a
single consistent table version (the server's snapshot validation raises
``SNAPSHOT_VIOLATION`` otherwise); admission control sheds overload with
``BUSY``; timeouts surface as ``TIMEOUT`` without breaking isolation; and an
interleaved mixed workload lands on exactly the state a serial schedule
would produce.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import Database
from repro.engine.serving import RemoteError, ServerThread, ServingClient


def _make_database(rows: int = 2000, *, plan_cache: int = 128) -> Database:
    db = Database(num_segments=2, plan_cache=plan_cache)
    db.execute("CREATE TABLE t (id INTEGER, grp TEXT, v INTEGER)")
    db.load_rows("t", [(i, "abc"[i % 3], 0) for i in range(rows)])
    db.execute("CREATE INDEX t_id ON t (id)")
    return db


def _add_sleepy(db: Database) -> None:
    """``sleepy(ms)`` sleeps per evaluated row — a controllable slow query."""
    db.create_function(
        "sleepy", lambda ms: time.sleep(ms / 1000.0) or ms, volatile=True
    )
    db.execute("CREATE TABLE slowt (ms INTEGER)")
    db.load_rows("slowt", [(100,)] * 10)  # SELECT over slowt ~= 1 second


# ---------------------------------------------------------------------------
# Readers under a concurrent writer: snapshot consistency
# ---------------------------------------------------------------------------


def test_eight_readers_under_writer_zero_violations():
    """8 reader clients race a whole-table UPDATE writer.

    Every row starts (and stays) at a uniform ``v``: a writer repeatedly runs
    ``UPDATE t SET v = v + 1``, so any torn read — part old rows, part new —
    shows up as ``min(v) != max(v)``.  The server's own snapshot validation
    (``SNAPSHOT_VIOLATION``) guards the same invariant from the inside.
    """
    db = _make_database(rows=3000)
    errors: list = []
    torn: list = []
    stop = threading.Event()

    with ServerThread(db, max_concurrent=10, max_queue=64) as server:

        def writer():
            try:
                with ServingClient(server.host, server.port) as client:
                    while not stop.is_set():
                        client.query("UPDATE t SET v = v + 1")
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        def reader(seed: int):
            try:
                with ServingClient(server.host, server.port) as client:
                    for _ in range(30):
                        row = client.query(
                            "SELECT min(v), max(v), count(*) FROM t"
                        ).rows[0]
                        if row[0] != row[1]:
                            torn.append(row)
                        if row[2] != 3000:
                            torn.append(("count", row))
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=writer)]
        threads += [threading.Thread(target=reader, args=(i,)) for i in range(8)]
        for thread in threads[1:]:
            thread.start()
        threads[0].start()
        for thread in threads[1:]:
            thread.join()
        stop.set()
        threads[0].join()

    assert not errors, errors
    assert not torn, torn[:5]


def test_concurrent_readers_actually_overlap():
    """Sanity check that reads run in parallel: 4 slow reads on 4 clients
    finish in well under 4x a single read's duration."""
    db = _make_database(rows=10)
    _add_sleepy(db)
    with ServerThread(db, max_concurrent=8, max_queue=16) as server:
        clients = [ServingClient(server.host, server.port) for _ in range(4)]
        try:
            start = time.perf_counter()
            threads = [
                threading.Thread(
                    target=client.query, args=("SELECT count(sleepy(ms)) FROM slowt",)
                )
                for client in clients
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
        finally:
            for client in clients:
                client.close()
    # One slow read is ~1s; four serialized would be ~4s.
    assert elapsed < 2.5, f"reads serialized: {elapsed:.2f}s for 4 overlapping queries"


# ---------------------------------------------------------------------------
# Interleaved mixed workload equals the serial schedule
# ---------------------------------------------------------------------------


def test_interleaved_dml_matches_serial_schedule():
    """N clients interleave SELECT/INSERT/UPDATE on disjoint key ranges.

    Because each client touches only its own range, every interleaving is
    conflict-equivalent to the serial schedule; the final table state must
    match computing each client's effects independently.
    """
    clients_n, per_client = 4, 30
    base = 10_000
    db = _make_database(rows=100)
    errors: list = []

    with ServerThread(db, max_concurrent=8, max_queue=64) as server:

        def worker(c: int):
            lo = base + c * 1000
            try:
                with ServingClient(server.host, server.port) as client:
                    insert = client.prepare("INSERT INTO t VALUES (%(id)s, %(g)s, %(v)s)")
                    update = client.prepare("UPDATE t SET v = v + %(d)s WHERE id = %(id)s")
                    count = client.prepare(
                        "SELECT count(*), coalesce(sum(v), 0) FROM t "
                        "WHERE id >= %(lo)s AND id < %(hi)s"
                    )
                    for i in range(per_client):
                        client.execute(insert, {"id": lo + i, "g": "x", "v": i})
                        if i % 3 == 0:
                            client.execute(update, {"d": 10, "id": lo + i})
                        rows_seen, _ = client.execute(
                            count, {"lo": lo, "hi": lo + 1000}
                        ).rows[0]
                        # Own writes are immediately visible (inserted i+1 so far).
                        assert rows_seen == i + 1, (c, i, rows_seen)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(c,)) for c in range(clients_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    assert not errors, errors
    # Serial-schedule expectation, computed independently per client.
    assert db.execute("SELECT count(*) FROM t").rows[0][0] == 100 + clients_n * per_client
    for c in range(clients_n):
        lo = base + c * 1000
        expected = sum(i + (10 if i % 3 == 0 else 0) for i in range(per_client))
        total = db.execute(
            "SELECT sum(v) FROM t WHERE id >= %(lo)s AND id < %(hi)s",
            {"lo": lo, "hi": lo + 1000},
        ).rows[0][0]
        assert total == expected, (c, total, expected)


# ---------------------------------------------------------------------------
# Admission control and timeouts
# ---------------------------------------------------------------------------


def test_busy_shedding_under_overload():
    """With capacity 1 and no queue, a second statement is shed with BUSY."""
    db = _make_database(rows=10)
    _add_sleepy(db)
    with ServerThread(db, max_concurrent=1, max_queue=0, statement_timeout=30.0) as server:
        busy_codes: list = []
        slow_done = threading.Event()

        def slow():
            with ServingClient(server.host, server.port) as client:
                client.query("SELECT count(sleepy(ms)) FROM slowt")
            slow_done.set()

        slow_thread = threading.Thread(target=slow)
        slow_thread.start()
        time.sleep(0.3)  # let the slow statement get admitted
        with ServingClient(server.host, server.port) as client:
            for _ in range(3):
                try:
                    client.query("SELECT count(*) FROM t")
                except RemoteError as exc:
                    busy_codes.append(exc.code)
                time.sleep(0.05)
        slow_thread.join()
        assert slow_done.is_set()
        assert busy_codes and set(busy_codes) == {"BUSY"}
        # Capacity is back: the same statement now succeeds.
        with ServingClient(server.host, server.port) as client:
            assert client.query("SELECT count(*) FROM t").scalar() == 10
            assert client.stats()["server"]["shed"] >= 1


def test_statement_timeout_and_recovery():
    """A slow read times out with TIMEOUT; the session and server survive.

    The abandoned worker thread keeps its read lock until the statement
    really finishes, but other *reads* still share — the quick query after
    the timeout must not wait for the slow one.
    """
    db = _make_database(rows=10)
    _add_sleepy(db)
    with ServerThread(db, max_concurrent=4, max_queue=8, statement_timeout=0.3) as server:
        with ServingClient(server.host, server.port) as client:
            with pytest.raises(RemoteError) as caught:
                client.query("SELECT count(sleepy(ms)) FROM slowt")
            assert caught.value.code == "TIMEOUT"
            start = time.perf_counter()
            assert client.query("SELECT count(*) FROM t").scalar() == 10
            assert time.perf_counter() - start < 0.5
            assert client.stats()["server"]["timed_out"] >= 1
    time.sleep(0.1)  # drain log noise from the abandoned statement


def test_writer_excludes_readers():
    """While a slow write runs, reads block until it finishes (no dirty data)."""
    db = _make_database(rows=10)
    _add_sleepy(db)
    with ServerThread(db, max_concurrent=4, max_queue=8) as server:
        started = threading.Event()

        def slow_write():
            with ServingClient(server.host, server.port) as client:
                started.set()
                client.query("UPDATE t SET v = sleepy(100)")

        writer = threading.Thread(target=slow_write)
        writer.start()
        started.wait()
        time.sleep(0.3)  # ensure the write holds the lock
        with ServingClient(server.host, server.port) as client:
            start = time.perf_counter()
            result = client.query("SELECT min(v), max(v) FROM t")
            elapsed = time.perf_counter() - start
        writer.join()
        # The read waited for the writer and saw its completed effect.
        assert result.rows[0] == (100, 100)
        assert elapsed > 0.2, f"read did not wait for the writer ({elapsed:.3f}s)"


# ---------------------------------------------------------------------------
# Prepared statements under concurrency
# ---------------------------------------------------------------------------


def test_concurrent_prepared_execute_parity():
    """6 clients hammer the same prepared point lookup; every result exact."""
    db = _make_database(rows=500)
    errors: list = []
    with ServerThread(db, max_concurrent=8, max_queue=64) as server:

        def worker(seed: int):
            try:
                with ServingClient(server.host, server.port) as client:
                    handle = client.prepare("SELECT grp, v FROM t WHERE id = %(id)s")
                    for i in range(50):
                        key = (seed * 37 + i) % 500
                        rows = client.execute(handle, {"id": key}).rows
                        assert rows == [("abc"[key % 3], 0)], (key, rows)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert not errors, errors
    stats = db.plan_cache.stats()
    assert stats["hits"] >= 6 * 50 - 10  # all executions after the first hit
