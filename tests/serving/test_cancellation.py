"""Cancellation, FIFO-lock fairness, drain deadlines, BUSY retry hints.

The invariant every test here circles: whatever happens to a statement —
client gone, deadline blown, waiter cancelled mid-queue — the server's
readers/writer lock ends **idle**.  A leaked hold would wedge every later
writer forever, which is why ``ReadWriteLock.idle`` exists as a property
instead of living only in our heads.
"""

from __future__ import annotations

import asyncio
import random
import socket
import threading
import time

from repro import Database
from repro.engine.serving import ReadWriteLock, ServerThread, ServingClient

SLOW_SQL = "SELECT count(sleepy(ms)) FROM slowt"  # ~1 second


def _make_database() -> Database:
    db = Database(num_segments=2, plan_cache=32)
    db.create_function(
        "sleepy", lambda ms: time.sleep(ms / 1000.0) or ms, volatile=True
    )
    db.execute("CREATE TABLE slowt (ms INTEGER)")
    db.load_rows("slowt", [(100,)] * 10)
    return db


def _send_raw(client: ServingClient, sql: str) -> None:
    """Ship a query frame without waiting for the response."""
    client._write_frame({"op": "query", "sql": sql})
    client._file.flush()


def _await_idle(server: ServerThread, deadline: float = 6.0) -> bool:
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if server.server._lock.idle:
            return True
        time.sleep(0.02)
    return False


# ---------------------------------------------------------------------------
# ReadWriteLock: FIFO grants and cancellation fairness
# ---------------------------------------------------------------------------


def test_lock_fifo_skips_cancelled_writer_and_batches_readers():
    """Queue [reader A, writer B, reader C] behind a writer, cancel B while
    it waits: the release grants A and C as one reader batch."""

    async def scenario() -> None:
        lock = ReadWriteLock()
        await lock.acquire_write()
        order = []

        async def reader(name: str) -> None:
            await lock.acquire_read()
            order.append(name)

        async def writer(name: str) -> None:
            await lock.acquire_write()
            order.append(name)

        a = asyncio.ensure_future(reader("A"))
        await asyncio.sleep(0)
        b = asyncio.ensure_future(writer("B"))
        await asyncio.sleep(0)
        c = asyncio.ensure_future(reader("C"))
        await asyncio.sleep(0)
        assert lock.waiters == 3
        b.cancel()
        await asyncio.gather(b, return_exceptions=True)
        lock.release_write()
        await asyncio.gather(a, c)
        assert order == ["A", "C"]
        assert lock.active_readers == 2
        lock.release_read()
        lock.release_read()
        assert lock.idle

    asyncio.run(scenario())


def test_lock_waiting_writer_blocks_later_readers():
    """No writer starvation: a reader arriving behind a queued writer waits."""

    async def scenario() -> None:
        lock = ReadWriteLock()
        await lock.acquire_read()
        order = []

        async def writer() -> None:
            await lock.acquire_write()
            order.append("W")
            lock.release_write()

        async def reader() -> None:
            await lock.acquire_read()
            order.append("R")
            lock.release_read()

        w = asyncio.ensure_future(writer())
        await asyncio.sleep(0)
        r = asyncio.ensure_future(reader())
        await asyncio.sleep(0)
        lock.release_read()
        await asyncio.gather(w, r)
        assert order == ["W", "R"]
        assert lock.idle

    asyncio.run(scenario())


def test_lock_randomized_cancel_grant_interleaving():
    """Fuzz: dozens of readers/writers with a third of them cancelled at
    random times — some while queued, some in the grant tick, some while
    holding.  Exclusion holds throughout and the lock ends idle."""

    async def fuzz(seed: int) -> None:
        rng = random.Random(seed)
        lock = ReadWriteLock()
        state = {"readers": 0, "writer": False}
        violations = []

        async def actor(kind: str, hold: float, start: float) -> None:
            await asyncio.sleep(start)
            if kind == "w":
                await lock.acquire_write()
                if state["readers"] or state["writer"]:
                    violations.append(("w", dict(state)))
                state["writer"] = True
                try:
                    await asyncio.sleep(hold)
                finally:
                    state["writer"] = False
                    lock.release_write()
            else:
                await lock.acquire_read()
                if state["writer"]:
                    violations.append(("r", dict(state)))
                state["readers"] += 1
                try:
                    await asyncio.sleep(hold)
                finally:
                    state["readers"] -= 1
                    lock.release_read()

        tasks = [
            asyncio.ensure_future(
                actor(
                    "w" if rng.random() < 0.35 else "r",
                    rng.uniform(0.0, 0.004),
                    rng.uniform(0.0, 0.004),
                )
            )
            for _ in range(40)
        ]
        loop = asyncio.get_running_loop()
        for task in rng.sample(tasks, len(tasks) // 3):
            loop.call_later(rng.uniform(0.0, 0.006), task.cancel)
        await asyncio.gather(*tasks, return_exceptions=True)
        assert not violations, violations[:3]
        assert lock.idle, f"seed {seed}: leaked lock state"

    for seed in range(12):
        asyncio.run(fuzz(seed))


# ---------------------------------------------------------------------------
# Server-side cancellation and timeout: the lock never leaks
# ---------------------------------------------------------------------------


def test_disconnect_cancels_inflight_statement():
    """An abruptly-dropped client (no polite close frame) cancels its
    running statement; the server counts it and stays fully usable."""
    db = _make_database()
    with ServerThread(db, max_concurrent=4, max_queue=8) as server:
        victim = ServingClient(server.host, server.port)
        _send_raw(victim, SLOW_SQL)
        time.sleep(0.3)  # statement admitted and running
        # shutdown() sends the FIN now; close() alone would leave the fd
        # open behind the makefile() wrapper's io-ref.
        victim._sock.shutdown(socket.SHUT_RDWR)
        victim._sock.close()  # abrupt: server sees EOF mid-statement

        deadline = time.monotonic() + 6.0
        while time.monotonic() < deadline:
            if server.server.stats.statements_cancelled >= 1:
                break
            time.sleep(0.02)
        assert server.server.stats.statements_cancelled >= 1
        assert server.server.stats.client_disconnects >= 1

        with ServingClient(server.host, server.port) as client:
            assert client.query("SELECT count(*) FROM slowt").rows[0][0] == 10
        # The orphaned worker thread finishes and the done-callback
        # releases the read hold — nothing leaks.
        assert _await_idle(server)


def test_timeout_surfaces_and_releases_lock():
    """A TIMEOUT reply does not strand the read hold: a write queued behind
    the runaway statement still lands once its thread finishes."""
    db = _make_database()
    with ServerThread(
        db, max_concurrent=4, max_queue=8, statement_timeout=0.2
    ) as server:
        with ServingClient(server.host, server.port) as client:
            reply = client.pipeline([{"op": "query", "sql": SLOW_SQL}])[0]
            assert reply["ok"] is False
            assert reply["error"]["code"] == "TIMEOUT"
            # The write waits FIFO behind the still-running thread, then
            # proceeds — impossible if the timeout leaked the lock.
            result = client.query("INSERT INTO slowt VALUES (1)")
            assert result.rowcount == 1
        assert server.server.stats.statements_timed_out >= 1
        assert _await_idle(server)


def test_busy_shed_carries_retry_after_hint():
    db = _make_database()
    with ServerThread(db, max_concurrent=1, max_queue=0) as server:
        blocker = ServingClient(server.host, server.port)
        try:
            _send_raw(blocker, SLOW_SQL)
            time.sleep(0.3)  # blocker occupies the only execution slot
            with ServingClient(server.host, server.port) as probe:
                reply = probe.pipeline(
                    [{"op": "query", "sql": "SELECT count(*) FROM slowt"}]
                )[0]
            assert reply["ok"] is False
            error = reply["error"]
            assert error["code"] == "BUSY"
            assert isinstance(error["retry_after_ms"], int)
            assert error["retry_after_ms"] >= 25
        finally:
            blocker.close()


# ---------------------------------------------------------------------------
# Graceful drain
# ---------------------------------------------------------------------------


def test_stop_drains_inflight_statement():
    db = _make_database()
    server = ServerThread(db, max_concurrent=2, max_queue=4).start()
    client = ServingClient(server.host, server.port)
    replies = []
    reader = threading.Thread(
        target=lambda: replies.append(client.pipeline([{"op": "query", "sql": SLOW_SQL}]))
    )
    reader.start()
    time.sleep(0.3)
    drained = server.stop(close_database=True, drain_timeout=10.0)
    assert drained is True
    reader.join(timeout=5.0)
    assert replies and replies[0][0]["ok"], "drained statement lost its reply"
    client._sock.close()


def test_stop_reports_drain_deadline_exceeded():
    db = _make_database()
    server = ServerThread(db, max_concurrent=2, max_queue=4).start()
    client = ServingClient(server.host, server.port)
    try:
        _send_raw(client, SLOW_SQL)
        time.sleep(0.3)
        drained = server.stop(drain_timeout=0.05)
        assert drained is False
    finally:
        client._sock.close()
        db.close()
