"""Wire-protocol fault injection: the server must survive hostile bytes.

Raw-socket tests against the length-prefixed JSON framing: truncated
frames, oversized declared lengths, malformed JSON, non-object payloads,
unknown ops, bad handles, and clients that vanish mid-query.  The
invariants: a broken frame *boundary* (oversized length) gets a typed
``PROTOCOL`` error and the connection closes; a broken frame *body*
(bad JSON, bad request shape) gets a typed error and the session lives on;
and no fault ever takes the server down — a fresh client always works
afterward.
"""

from __future__ import annotations

import json
import socket
import struct
import time

import pytest

from repro import Database
from repro.engine.serving import (
    DEFAULT_MAX_FRAME_BYTES,
    RemoteError,
    ServerThread,
    ServingClient,
    error_code_for,
    json_frame,
)
from repro.errors import CatalogError, ExecutionError, SQLSyntaxError

_HEADER = struct.Struct(">I")


@pytest.fixture()
def server():
    db = Database(plan_cache=32)
    db.execute("CREATE TABLE t (id INTEGER, v INTEGER)")
    db.load_rows("t", [(i, i * 10) for i in range(20)])
    with ServerThread(db, max_frame_bytes=64 * 1024) as thread:
        yield thread


def _raw_connection(server) -> socket.socket:
    sock = socket.create_connection((server.host, server.port), timeout=5.0)
    return sock


def _send_frame(sock: socket.socket, body: bytes) -> None:
    sock.sendall(_HEADER.pack(len(body)) + body)


def _read_frame(sock: socket.socket):
    header = b""
    while len(header) < _HEADER.size:
        chunk = sock.recv(_HEADER.size - len(header))
        if not chunk:
            return None  # connection closed
        header += chunk
    (length,) = _HEADER.unpack(header)
    body = b""
    while len(body) < length:
        chunk = sock.recv(length - len(body))
        if not chunk:
            return None
        body += chunk
    return json.loads(body.decode("utf-8"))


def _assert_server_alive(server) -> None:
    with ServingClient(server.host, server.port) as client:
        assert client.query("SELECT count(*) FROM t").scalar() == 20


# ---------------------------------------------------------------------------
# Frame-level faults
# ---------------------------------------------------------------------------


def test_truncated_frame_then_disconnect(server):
    """A client that dies mid-frame must not wedge or kill the server."""
    sock = _raw_connection(server)
    sock.sendall(_HEADER.pack(100) + b'{"op": "qu')  # 100 promised, 10 sent
    sock.close()
    _assert_server_alive(server)


def test_truncated_header_then_disconnect(server):
    sock = _raw_connection(server)
    sock.sendall(b"\x00\x00")  # half a length prefix
    sock.close()
    _assert_server_alive(server)


def test_oversized_frame_is_fatal_protocol_error(server):
    """A declared length over the limit: typed error, then the server closes
    the connection (the frame boundary can no longer be trusted)."""
    sock = _raw_connection(server)
    sock.sendall(_HEADER.pack(server.server.max_frame_bytes + 1))
    reply = _read_frame(sock)
    assert reply is not None and reply["ok"] is False
    assert reply["error"]["code"] == "PROTOCOL"
    assert _read_frame(sock) is None  # server closed the connection
    sock.close()
    _assert_server_alive(server)


def test_malformed_json_keeps_session_alive(server):
    """Bad JSON inside an intact frame: typed error, connection survives."""
    sock = _raw_connection(server)
    _send_frame(sock, b"this is not json {")
    reply = _read_frame(sock)
    assert reply["ok"] is False and reply["error"]["code"] == "PROTOCOL"
    # Same socket still speaks the protocol.
    _send_frame(sock, json.dumps({"op": "query", "sql": "SELECT v FROM t WHERE id = 3"}).encode())
    reply = _read_frame(sock)
    assert reply["ok"] is True and reply["rows"] == [[30]]
    sock.close()


def test_invalid_utf8_keeps_session_alive(server):
    sock = _raw_connection(server)
    _send_frame(sock, b"\xff\xfe\x00garbage")
    reply = _read_frame(sock)
    assert reply["ok"] is False and reply["error"]["code"] == "PROTOCOL"
    _send_frame(sock, json.dumps({"op": "connect"}).encode())
    assert _read_frame(sock)["ok"] is True
    sock.close()


def test_non_object_payload(server):
    sock = _raw_connection(server)
    for payload in (b"[1, 2, 3]", b'"query"', b"42", b"null"):
        _send_frame(sock, payload)
        reply = _read_frame(sock)
        assert reply["ok"] is False and reply["error"]["code"] == "PROTOCOL"
    sock.close()


def test_empty_frame(server):
    sock = _raw_connection(server)
    _send_frame(sock, b"")
    reply = _read_frame(sock)
    assert reply["ok"] is False and reply["error"]["code"] == "PROTOCOL"
    sock.close()


# ---------------------------------------------------------------------------
# Request-level faults
# ---------------------------------------------------------------------------


def test_unknown_op(server):
    with ServingClient(server.host, server.port) as client:
        with pytest.raises(RemoteError) as caught:
            client.request({"op": "teleport"})
        assert caught.value.code == "PROTOCOL"
        # The session survives request-level errors.
        assert client.query("SELECT 1 + 1").scalar() == 2


def test_missing_and_invalid_fields(server):
    with ServingClient(server.host, server.port) as client:
        for bad in (
            {"op": "query"},  # no sql
            {"op": "query", "sql": ""},  # empty sql
            {"op": "query", "sql": 42},  # wrong type
            {"op": "query", "sql": "SELECT 1", "params": [1, 2]},  # params not a dict
            {"op": "execute"},  # no handle
            {"op": "execute", "handle": 7},  # wrong type
            {"op": "prepare"},  # no sql
            {},  # no op at all
        ):
            with pytest.raises(RemoteError) as caught:
                client.request(bad)
            assert caught.value.code == "PROTOCOL", bad
        assert client.query("SELECT count(*) FROM t").scalar() == 20


def test_unknown_statement_handle(server):
    with ServingClient(server.host, server.port) as client:
        with pytest.raises(RemoteError) as caught:
            client.execute("s999")
        assert caught.value.code == "PROTOCOL"


def test_handles_are_per_session(server):
    with ServingClient(server.host, server.port) as one:
        handle = one.prepare("SELECT v FROM t WHERE id = %(id)s")
        assert one.execute(handle, {"id": 5}).scalar() == 50
        with ServingClient(server.host, server.port) as two:
            with pytest.raises(RemoteError) as caught:
                two.execute(handle, {"id": 5})
            assert caught.value.code == "PROTOCOL"


def test_engine_errors_are_typed(server):
    with ServingClient(server.host, server.port) as client:
        cases = [
            ("SELEKT 1", "SYNTAX"),
            ("SELECT * FROM no_such_table", "CATALOG"),
            ("SELECT nope(id) FROM t", "FUNCTION"),
        ]
        for sql, code in cases:
            with pytest.raises(RemoteError) as caught:
                client.query(sql)
            assert caught.value.code == code, sql
        # Missing parameter surfaces as a typed engine error, session intact.
        with pytest.raises(RemoteError):
            client.query("SELECT v FROM t WHERE id = %(missing)s")
        assert client.query("SELECT 1").scalar() == 1


def test_error_code_mapping():
    assert error_code_for(SQLSyntaxError("x", position=0)) == "SYNTAX"
    assert error_code_for(CatalogError("x")) == "CATALOG"
    assert error_code_for(ExecutionError("x")) == "EXECUTION"
    assert error_code_for(ValueError("x")) == "INTERNAL"


# ---------------------------------------------------------------------------
# Disconnects
# ---------------------------------------------------------------------------


def test_mid_query_disconnect(server):
    """The client sends a query and hangs up before reading the response."""
    sock = _raw_connection(server)
    _send_frame(
        sock, json.dumps({"op": "query", "sql": "SELECT count(*) FROM t"}).encode()
    )
    sock.close()  # response has nowhere to go
    time.sleep(0.2)
    _assert_server_alive(server)


def test_mid_write_disconnect_still_applies(server):
    """A write whose client vanishes still commits — there is no rollback."""
    sock = _raw_connection(server)
    _send_frame(
        sock,
        json.dumps({"op": "query", "sql": "INSERT INTO t VALUES (777, 7770)"}).encode(),
    )
    sock.close()
    deadline = time.time() + 5.0
    db = server.server.database
    while time.time() < deadline:
        if db.execute("SELECT count(*) FROM t WHERE id = 777").rows[0][0] == 1:
            break
        time.sleep(0.05)
    with ServingClient(server.host, server.port) as client:
        assert client.query("SELECT v FROM t WHERE id = 777").scalar() == 7770


def test_many_rapid_connect_disconnect(server):
    for _ in range(25):
        sock = _raw_connection(server)
        sock.close()
    _assert_server_alive(server)
    assert len(server.server._sessions) <= 1  # sessions are reaped


# ---------------------------------------------------------------------------
# Frame encoding helper
# ---------------------------------------------------------------------------


def test_json_frame_roundtrip():
    frame = json_frame({"ok": True, "rows": [[1, "a", None, 2.5]]})
    (length,) = _HEADER.unpack(frame[: _HEADER.size])
    assert length == len(frame) - _HEADER.size
    assert json.loads(frame[_HEADER.size :].decode("utf-8"))["rows"] == [[1, "a", None, 2.5]]


def test_large_result_within_frame_limit(server):
    with ServingClient(server.host, server.port) as client:
        client.query("CREATE TABLE big (s TEXT)")
        payload = "x" * 100
        handle = client.prepare("INSERT INTO big VALUES (%(s)s)")
        client.pipeline(
            [{"op": "execute", "handle": handle, "params": {"s": payload}}] * 50
        )
        result = client.query("SELECT s FROM big")
        assert len(result.rows) == 50
        assert all(row == (payload,) for row in result.rows)
