"""Plan cache vs dictionary compression: demotion must stay invisible.

A cached plan is only an AST — executing it always goes back through the
executor, which consults the *current* storage representation.  So when a
text column demotes from dictionary to plain object storage mid-session
(cardinality blowout), cached plans and prepared handles must keep
returning correct results: the vectorized text path silently declines
(``where_vectorized`` flips to False) and, once the demoting INSERT drifts
past the auto-analyze threshold, the entry is invalidated and replanned.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.engine.columnar import DictColumn


@pytest.fixture()
def tiny_dictionaries(monkeypatch):
    """Dictionaries blow out after 4 distinct values: demotion on demand."""
    monkeypatch.setattr(DictColumn, "MAX_DISTINCT", 4)


def _make_db(*, plan_cache=64, rows=200):
    db = Database(num_segments=3, plan_cache=plan_cache)
    db.execute("CREATE TABLE s (id INTEGER, label TEXT)")
    db.load_rows("s", [(i, "abc"[i % 3]) for i in range(1, rows + 1)])
    return db


def _demote(db, start, count):
    """Insert ``count`` distinct labels: every segment's dictionary demotes."""
    db.execute(
        "INSERT INTO s VALUES "
        + ", ".join(f"({i}, 'unique_{i}')" for i in range(start, start + count))
    )


def test_cached_plan_survives_demotion_below_drift(tiny_dictionaries):
    db = _make_db()
    query = "SELECT count(*) FROM s WHERE label = 'a'"
    expected = db.execute(query)
    assert expected.stats.where_vectorized is True
    db.execute(query)  # warm: second execution is a cache hit
    hits_before = db.plan_cache.stats()["hits"]
    invalidations_before = db.plan_cache.stats()["invalidations"]

    # A small INSERT (under max(64, 20% of rows)) keeps the plan cached but
    # flips the storage representation underneath it.
    _demote(db, 1000, 12)

    after = db.execute(query)
    assert after.rows == expected.rows  # none of the new labels match
    assert after.stats.where_vectorized is False  # dict path declined
    stats = db.plan_cache.stats()
    assert stats["hits"] > hits_before  # served from cache...
    assert stats["invalidations"] == invalidations_before  # ...not replanned


def test_demoting_insert_past_drift_invalidates(tiny_dictionaries):
    db = _make_db(rows=100)
    query = "SELECT count(*) FROM s WHERE label != 'c'"
    first = db.execute(query)
    db.execute(query)
    before = db.plan_cache.stats()["invalidations"]

    # 200 distinct labels: demotes every segment AND drifts past the
    # invalidation threshold, so the next execution replans.
    _demote(db, 1000, 200)

    after = db.execute(query)
    assert after.rows[0][0] == first.rows[0][0] + 200
    assert db.plan_cache.stats()["invalidations"] > before


def test_prepared_execute_correct_across_demotion(tiny_dictionaries):
    db = _make_db()
    twin = Database(num_segments=3)  # no cache, no compression pressure
    twin.execute("CREATE TABLE s (id INTEGER, label TEXT)")
    twin.load_rows("s", [(i, "abc"[i % 3]) for i in range(1, 201)])

    prepared = db.prepare("SELECT id FROM s WHERE label = %(x)s ORDER BY id")
    query = "SELECT id FROM s WHERE label = %(x)s ORDER BY id"

    compressed = prepared.execute({"x": "b"})
    assert compressed.rows == twin.execute(query, {"x": "b"}).rows
    assert compressed.stats.where_vectorized is True

    _demote(db, 1000, 12)
    _demote(twin, 1000, 12)

    # Same handle, new storage representation: identical answers, row path.
    for probe in ("b", "unique_1005", "missing"):
        got = prepared.execute({"x": probe})
        assert got.rows == twin.execute(query, {"x": probe}).rows, probe
    assert prepared.execute({"x": "b"}).stats.where_vectorized is False


def test_recompressed_table_revectorizes_through_cache(tiny_dictionaries):
    # Demote, then rebuild the table contents with CREATE TABLE AS: the new
    # table's fresh segments re-acquire dictionaries, and cached plans
    # against it vectorize again.
    db = _make_db(rows=60)
    _demote(db, 1000, 12)
    assert db.execute("SELECT count(*) FROM s WHERE label = 'a'").stats.where_vectorized is False

    db.execute("CREATE TABLE compact AS SELECT id, label FROM s WHERE id <= 60")
    query = "SELECT count(*) FROM compact WHERE label = 'a'"
    first = db.execute(query)
    assert first.stats.where_vectorized is True
    assert first.rows == [(20,)]
    second = db.execute(query)  # cache hit, same vectorized path
    assert second.rows == first.rows
    assert second.stats.where_vectorized is True
