"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro import Database
from repro.datasets import (
    load_baskets_table,
    load_documents_table,
    load_logistic_table,
    load_points_table,
    load_regression_table,
    make_baskets,
    make_blobs,
    make_documents,
    make_logistic,
    make_low_rank_matrix,
    make_name_variants,
    make_ratings,
    make_regression,
    make_tag_corpus,
)
from repro.errors import ValidationError


class TestGenerators:
    def test_regression_shapes_and_signal(self):
        data = make_regression(500, 4, noise=0.01, seed=0)
        assert data.features.shape == (500, 4)
        assert data.response.shape == (500,)
        # With tiny noise the closed-form fit recovers the coefficients.
        fitted, *_ = np.linalg.lstsq(data.features, data.response, rcond=None)
        np.testing.assert_allclose(fitted, data.coefficients, atol=0.05)

    def test_regression_reproducible(self):
        a = make_regression(50, 3, seed=42)
        b = make_regression(50, 3, seed=42)
        np.testing.assert_array_equal(a.features, b.features)

    def test_regression_validates_arguments(self):
        with pytest.raises(ValidationError):
            make_regression(0, 3)

    def test_logistic_labels(self):
        data = make_logistic(300, 3, seed=1)
        assert set(np.unique(data.labels)) <= {0.0, 1.0}
        signed = make_logistic(300, 3, seed=1, labels_plus_minus=True)
        assert set(np.unique(signed.labels)) <= {-1.0, 1.0}

    def test_blobs_are_separated(self):
        points, labels, centroids = make_blobs(300, 2, 3, spread=0.1, separation=10.0, seed=2)
        assert points.shape == (300, 2)
        assert centroids.shape == (3, 2)
        # Points lie close to their generating centroid.
        distances = np.linalg.norm(points - centroids[labels], axis=1)
        assert float(distances.mean()) < 1.0

    def test_baskets_contain_planted_patterns(self):
        baskets = make_baskets(300, 30, patterns=[[1, 2, 3]], pattern_probability=1.0, seed=3)
        assert all({1, 2, 3}.issubset(set(basket)) for basket in baskets)

    def test_low_rank_matrix_rank(self):
        matrix = make_low_rank_matrix(30, 20, 3, noise=0.0, seed=4)
        singular_values = np.linalg.svd(matrix, compute_uv=False)
        assert singular_values[3] < 1e-8 * singular_values[0]
        with pytest.raises(ValidationError):
            make_low_rank_matrix(5, 5, 10)

    def test_ratings_density(self):
        triples = make_ratings(20, 20, 2, density=0.5, seed=5)
        assert 100 <= len(triples) <= 300
        users = {u for u, _, _ in triples}
        assert max(users) < 20

    def test_documents_generator(self):
        documents, topic_word = make_documents(10, 50, 3, document_length=20, seed=6)
        assert len(documents) == 10
        assert all(len(document) == 20 for document in documents)
        assert topic_word.shape == (3, 50)
        np.testing.assert_allclose(topic_word.sum(axis=1), 1.0, rtol=1e-9)

    def test_tag_corpus(self):
        corpus = make_tag_corpus(20, seed=7)
        assert len(corpus) == 20
        assert corpus.token_count() > 0
        train, test = corpus.split(0.75)
        assert len(train) + len(test) == 20
        for sequence in corpus.sequences:
            assert len(sequence.tokens) == len(sequence.labels)
            assert all(label in corpus.labels for label in sequence.labels)

    def test_name_variants(self):
        pairs = make_name_variants(["Tim Tebow"], variants_per_name=4, seed=8)
        assert any(mention == "Tim Tebow" for _, mention in pairs)
        assert all(canonical == "Tim Tebow" for canonical, _ in pairs)


class TestLoaders:
    def test_regression_loader(self):
        db = Database(num_segments=2)
        data = make_regression(100, 3, seed=9)
        load_regression_table(db, "r", data)
        assert db.query_scalar("SELECT count(*) FROM r") == 100
        assert db.catalog.table_schema("r").type_of("x").is_array

    def test_logistic_loader_boolean_labels(self):
        db = Database()
        data = make_logistic(50, 2, seed=10)
        load_logistic_table(db, "l", data, boolean_labels=True)
        assert db.catalog.table_schema("l").type_of("y").name == "boolean"

    def test_points_and_baskets_loaders(self):
        db = Database()
        points, _, _ = make_blobs(40, 2, 2, seed=11)
        load_points_table(db, "p", points)
        assert db.query_scalar("SELECT count(*) FROM p") == 40
        baskets = make_baskets(20, 10, seed=12)
        load_baskets_table(db, "b", baskets)
        assert db.query_scalar("SELECT count(DISTINCT basket_id) FROM b") == 20

    def test_documents_loader(self):
        db = Database()
        corpus = make_tag_corpus(5, seed=13)
        load_documents_table(db, "docs", corpus)
        assert db.query_scalar("SELECT count(DISTINCT doc_id) FROM docs") == 5
        assert db.query_scalar("SELECT count(*) FROM docs") == corpus.token_count()
