"""Unit tests for the abstraction layer: AnyType, handles, linalg, transition states."""

import numpy as np
import pytest

from repro.abstraction import (
    AnyType,
    ArrayHandle,
    LinRegrTransitionState,
    LogRegrIRLSState,
    MutableArrayHandle,
    SymmetricPositiveDefiniteEigenDecomposition,
    allocate_array,
    composite,
    symmetrize_from_lower,
    triangular_rank_one_update,
)
from repro.errors import FunctionError, SingularMatrixError, TypeMismatchError


class TestAnyType:
    def test_argument_pack_indexing(self):
        args = AnyType.args(None, 2.5, [1.0, 2.0])
        assert len(args) == 3
        assert args[0].is_null()
        assert args[1].get_as(float) == 2.5
        vector = args[2].get_as(np.ndarray)
        np.testing.assert_array_equal(vector, [1.0, 2.0])

    def test_get_as_string_aliases(self):
        value = AnyType([1.0, 2.0])
        np.testing.assert_array_equal(value.get_as("MappedColumnVector"), [1.0, 2.0])
        matrix = AnyType([[1.0, 0.0], [0.0, 1.0]]).get_as("Matrix")
        assert matrix.shape == (2, 2)
        assert AnyType("7").get_as("integer") == 7

    def test_get_as_invalid_target_raises(self):
        with pytest.raises(TypeMismatchError):
            AnyType(1.0).get_as("quaternion")
        with pytest.raises(TypeMismatchError):
            AnyType("abc").get_as(float)

    def test_out_of_range_index_raises(self):
        with pytest.raises(FunctionError):
            AnyType.args(1)[3]
        with pytest.raises(FunctionError):
            AnyType(1.0)[0]

    def test_composite_building_with_lshift(self):
        record = AnyType() << np.array([1.0, 2.0]) << 42.0
        values = record.to_python()
        assert len(values) == 2 and values[1] == 42.0

    def test_composite_helper(self):
        record = composite(coef=[1.0], r2=0.9)
        assert record == {"coef": [1.0], "r2": 0.9}

    def test_iteration(self):
        values = [item.value for item in AnyType.args(1, 2, 3)]
        assert values == [1, 2, 3]


class TestHandles:
    def test_array_handle_is_read_only(self):
        handle = ArrayHandle([1.0, 2.0, 3.0])
        assert len(handle) == 3
        assert handle[1] == 2.0
        with pytest.raises(ValueError):
            handle.array[0] = 9.0

    def test_promotion_copies_exactly_once(self):
        handle = ArrayHandle([1.0, 2.0])
        mutable = handle.to_mutable()
        mutable[0] = 5.0
        assert handle[0] == 1.0
        assert handle.copies_made == 1
        # Promoting a mutable handle is free.
        assert mutable.to_mutable() is mutable

    def test_mutable_handle_in_place_ops(self):
        handle = MutableArrayHandle(np.zeros(3))
        handle[1] = 7.0
        handle.fill(2.0)
        np.testing.assert_array_equal(handle.array, [2.0, 2.0, 2.0])

    def test_allocate_array(self):
        handle = allocate_array(4, fill=1.5)
        np.testing.assert_array_equal(handle.array, [1.5] * 4)
        with pytest.raises(FunctionError):
            allocate_array(-1)

    def test_iteration(self):
        assert list(ArrayHandle([1.0, 2.0])) == [1.0, 2.0]


class TestLinalg:
    def test_triangular_update_plus_symmetrize_equals_outer(self):
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(20, 5))
        lower = np.zeros((5, 5))
        full = np.zeros((5, 5))
        for vector in vectors:
            triangular_rank_one_update(lower, vector)
            full += np.outer(vector, vector)
        np.testing.assert_allclose(symmetrize_from_lower(lower), full, rtol=1e-10)

    def test_decomposition_pseudo_inverse(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(50, 4))
        gram = x.T @ x
        decomposition = SymmetricPositiveDefiniteEigenDecomposition(gram)
        np.testing.assert_allclose(decomposition.pseudo_inverse(), np.linalg.inv(gram), rtol=1e-8)
        assert decomposition.is_positive_definite()
        assert decomposition.condition_no() >= 1.0

    def test_rank_deficient_matrix_gives_pseudo_inverse(self):
        # A singular Gram matrix (duplicate column).
        x = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        gram = x.T @ x
        decomposition = SymmetricPositiveDefiniteEigenDecomposition(gram)
        pinv = decomposition.pseudo_inverse()
        np.testing.assert_allclose(pinv, np.linalg.pinv(gram), atol=1e-8)
        assert decomposition.condition_no() == float("inf")

    def test_non_square_raises(self):
        with pytest.raises(SingularMatrixError):
            SymmetricPositiveDefiniteEigenDecomposition(np.zeros((2, 3)))

    def test_solve(self):
        gram = np.array([[4.0, 1.0], [1.0, 3.0]])
        rhs = np.array([1.0, 2.0])
        decomposition = SymmetricPositiveDefiniteEigenDecomposition(gram)
        np.testing.assert_allclose(decomposition.solve(rhs), np.linalg.solve(gram, rhs), rtol=1e-10)


class TestTransitionStates:
    def test_linregr_state_round_trip(self):
        state = LinRegrTransitionState(3)
        state.num_rows = 5
        state.y_sum = 2.0
        state.y_square_sum = 4.0
        state.x_transp_y = np.array([1.0, 2.0, 3.0])
        state.x_transp_x = np.arange(9, dtype=float).reshape(3, 3)
        restored = LinRegrTransitionState.from_array(state.to_array())
        assert restored.num_rows == 5
        np.testing.assert_array_equal(restored.x_transp_x, state.x_transp_x)

    def test_linregr_merge(self):
        a = LinRegrTransitionState(2)
        a.initialize(2)
        a.num_rows = 1
        a.x_transp_y = np.array([1.0, 0.0])
        b = LinRegrTransitionState(2)
        b.initialize(2)
        b.num_rows = 2
        b.x_transp_y = np.array([0.0, 2.0])
        merged = a.merge(b)
        assert merged.num_rows == 3
        np.testing.assert_array_equal(merged.x_transp_y, [1.0, 2.0])

    def test_linregr_merge_width_mismatch_raises(self):
        a = LinRegrTransitionState(2)
        a.num_rows = 1
        b = LinRegrTransitionState(3)
        b.num_rows = 1
        with pytest.raises(FunctionError):
            a.merge(b)

    def test_linregr_merge_with_empty(self):
        a = LinRegrTransitionState(0)
        b = LinRegrTransitionState(2)
        b.num_rows = 3
        assert a.merge(b) is b

    def test_irls_state_round_trip(self):
        state = LogRegrIRLSState(2, coef=np.array([0.5, -0.5]))
        state.num_rows = 7
        state.log_likelihood = -3.0
        state.x_trans_d_z = np.array([1.0, 2.0])
        state.x_trans_d_x = np.eye(2)
        restored = LogRegrIRLSState.from_array(state.to_array())
        assert restored.num_rows == 7
        np.testing.assert_array_equal(restored.coef, [0.5, -0.5])
        np.testing.assert_array_equal(restored.x_trans_d_x, np.eye(2))

    def test_bad_state_array_raises(self):
        with pytest.raises(FunctionError):
            LinRegrTransitionState.from_array(np.zeros(3))
        with pytest.raises(FunctionError):
            LogRegrIRLSState.from_array(np.zeros(5))
