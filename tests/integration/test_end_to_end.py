"""Integration tests: full pipelines through the public API on the SQL engine.

These exercise the combinations the paper cares about: driver functions plus
user-defined aggregates over segmented tables, templated catalog-driven
queries, and the claim that the parallel (merge) execution path returns the
same models as single-stream execution.
"""

import numpy as np
import pytest

from repro import Database
from repro.datasets import (
    load_logistic_table,
    load_points_table,
    load_regression_table,
    make_blobs,
    make_logistic,
    make_regression,
    make_tag_corpus,
)
from repro.methods import kmeans, linear_regression, logistic_regression, profile
from repro.methods.sketches import count_distinct
from repro.convex import train_least_squares
from repro.text import TrigramIndex, train_crf, viterbi


class TestAnalystWorkflow:
    """The MAD workflow: load data magnetically, profile it, then model it."""

    def test_load_profile_model(self):
        db = Database(num_segments=4)
        data = make_regression(500, 4, noise=0.1, seed=41)
        load_regression_table(db, "sales", data)

        # Profile the freshly loaded table (templated / catalog-driven SQL).
        table_profile = profile.profile(db, "sales")
        assert table_profile.row_count == 500
        assert table_profile.column("y").stddev > 0

        # Model it with the single-pass aggregate.
        model = linear_regression.train(db, "sales")
        assert model.r2 > 0.95

        # Score it back into a table inside the engine and aggregate the error.
        predictions = linear_regression.predict(db, model, "sales")
        db.create_table("scored", [("id", "integer"), ("prediction", "double precision")])
        db.load_rows("scored", [(row["id"], row["prediction"]) for row in predictions])
        mse = db.query_scalar(
            "SELECT avg((s.y - p.prediction) * (s.y - p.prediction)) "
            "FROM sales s JOIN scored p ON s.id = p.id"
        )
        assert mse < 0.05

    def test_mixed_methods_share_one_database(self):
        db = Database(num_segments=4)
        regression = make_regression(300, 3, seed=42)
        load_regression_table(db, "regr", regression)
        classification = make_logistic(300, 3, seed=43)
        load_logistic_table(db, "logi", classification)
        points, _, _ = make_blobs(200, 2, 3, seed=44)
        load_points_table(db, "pts", points)

        ols = linear_regression.train(db, "regr")
        irls = logistic_regression.train(db, "logi")
        clusters = kmeans.train(db, "pts", k=3, seed=45)
        sgd = train_least_squares(db, "regr", max_epochs=10)

        assert ols.r2 > 0.9
        assert irls.num_rows == 300
        assert clusters.centroids.shape == (3, 2)
        np.testing.assert_allclose(sgd.model, regression.coefficients, atol=0.25)
        # No temp state tables leaked by any driver.
        assert not [name for name in db.table_names() if "state" in name]

    def test_distinct_count_and_grouped_models(self):
        db = Database(num_segments=4)
        data = make_regression(400, 2, seed=46)
        load_regression_table(db, "d", data)
        estimate = count_distinct(db, "d", "id")
        assert 250 <= estimate <= 650
        # Per-group regression via SQL grouping of the linregr aggregate:
        linear_regression.install_linear_regression(db)
        rows = db.query_dicts(
            "SELECT id % 2 AS bucket, linregr(y, x) AS model FROM d GROUP BY id % 2 ORDER BY bucket"
        )
        assert len(rows) == 2
        for row in rows:
            np.testing.assert_allclose(
                np.asarray(row["model"]["coef"]), data.coefficients, atol=0.2
            )


class TestParallelConsistency:
    """The merge path must not change results (Section 3.1.1 invariant)."""

    @pytest.mark.parametrize("segments", [1, 2, 8])
    def test_linear_regression_invariant_to_segment_count(self, segments):
        data = make_regression(300, 3, seed=47)
        db = Database(num_segments=segments)
        load_regression_table(db, "regr", data)
        model = linear_regression.train(db, "regr")
        expected, *_ = np.linalg.lstsq(data.features, data.response, rcond=None)
        np.testing.assert_allclose(model.coef, expected, rtol=1e-6)

    def test_disabling_merge_path_gives_same_model(self):
        data = make_regression(300, 3, seed=48)
        models = []
        for parallel in (True, False):
            db = Database(num_segments=4, parallel_aggregation=parallel)
            load_regression_table(db, "regr", data)
            models.append(linear_regression.train(db, "regr").coef)
        np.testing.assert_allclose(models[0], models[1], rtol=1e-9)

    def test_speedup_statistics_reported(self):
        db = Database(num_segments=4)
        data = make_regression(2000, 8, seed=49)
        load_regression_table(db, "regr", data)
        linear_regression.install_linear_regression(db)
        result = db.execute("SELECT linregr(y, x) FROM regr")
        timings = result.stats.aggregate_timings[0]
        assert timings.num_segments == 4
        assert timings.speedup > 1.5  # near-linear in the ideal simulation


class TestTextPipeline:
    def test_tag_and_resolve_entities(self):
        db = Database(num_segments=2)
        corpus = make_tag_corpus(60, seed=50)
        train_corpus, test_corpus = corpus.split(0.8)
        model = train_crf(train_corpus, num_epochs=4, seed=51)

        # Tag the held-out sentences and store the NAME mentions in a table.
        db.create_table("mentions", [("doc_id", "integer"), ("text", "text")])
        mention_id = 0
        for sequence in test_corpus.sequences:
            labels, _ = viterbi(model, sequence.tokens)
            for token, label in zip(sequence.tokens, labels):
                if label == "NAME":
                    db.load_rows("mentions", [(mention_id, token)])
                    mention_id += 1
        assert mention_id > 0

        # Entity resolution by approximate string matching over the mentions.
        index = TrigramIndex(db, "mentions")
        index.build()
        matches = index.search("tebow", threshold=0.3)
        if matches:  # the synthetic corpus usually contains Tebow mentions
            assert all(match.similarity >= 0.3 for match in matches)
