"""Unit tests for the SQL type system."""

import numpy as np
import pytest

from repro.engine import types as t
from repro.errors import TypeMismatchError


class TestTypeFromName:
    def test_basic_spellings(self):
        assert t.type_from_name("integer") is t.INTEGER
        assert t.type_from_name("DOUBLE PRECISION") is t.DOUBLE
        assert t.type_from_name("text") is t.TEXT
        assert t.type_from_name("boolean") is t.BOOLEAN

    def test_aliases(self):
        assert t.type_from_name("int4") is t.INTEGER
        assert t.type_from_name("float8") is t.DOUBLE
        assert t.type_from_name("varchar") is t.TEXT

    def test_array_types(self):
        assert t.type_from_name("double precision[]") is t.DOUBLE_ARRAY
        assert t.type_from_name("integer[]") is t.INTEGER_ARRAY
        assert t.type_from_name("text[]") is t.TEXT_ARRAY

    def test_whitespace_normalization(self):
        assert t.type_from_name("  double    precision ") is t.DOUBLE

    def test_unknown_type_raises(self):
        with pytest.raises(TypeMismatchError):
            t.type_from_name("geography")


class TestIsNull:
    def test_none_is_null(self):
        assert t.is_null(None)

    def test_nan_is_null(self):
        assert t.is_null(float("nan"))

    def test_zero_is_not_null(self):
        assert not t.is_null(0)
        assert not t.is_null(0.0)
        assert not t.is_null("")


class TestInferType:
    def test_scalars(self):
        assert t.infer_type(True) is t.BOOLEAN
        assert t.infer_type(3) is t.BIGINT
        assert t.infer_type(3.5) is t.DOUBLE
        assert t.infer_type("x") is t.TEXT

    def test_arrays(self):
        assert t.infer_type(np.zeros(3)) is t.DOUBLE_ARRAY
        assert t.infer_type(np.zeros(3, dtype=np.int64)) is t.INTEGER_ARRAY
        assert t.infer_type(["a", "b"]) is t.TEXT_ARRAY
        assert t.infer_type([1, 2, 3]) is t.INTEGER_ARRAY
        assert t.infer_type([1.5, 2.0]) is t.DOUBLE_ARRAY

    def test_none_is_any(self):
        assert t.infer_type(None) is t.ANY


class TestCoerceValue:
    def test_null_passes_through(self):
        assert t.coerce_value(None, t.INTEGER) is None

    def test_integer_coercions(self):
        assert t.coerce_value("42", t.INTEGER) == 42
        assert t.coerce_value(3.0, t.BIGINT) == 3
        assert t.coerce_value(True, t.INTEGER) == 1

    def test_non_integral_float_to_integer_raises(self):
        with pytest.raises(TypeMismatchError):
            t.coerce_value(3.5, t.INTEGER)

    def test_double_coercions(self):
        assert t.coerce_value("3.5", t.DOUBLE) == 3.5
        assert t.coerce_value(2, t.DOUBLE) == 2.0

    def test_boolean_coercions(self):
        assert t.coerce_value("true", t.BOOLEAN) is True
        assert t.coerce_value("f", t.BOOLEAN) is False
        assert t.coerce_value(0, t.BOOLEAN) is False
        with pytest.raises(TypeMismatchError):
            t.coerce_value("maybe", t.BOOLEAN)

    def test_text_coercions(self):
        assert t.coerce_value(12, t.TEXT) == "12"
        assert t.coerce_value(True, t.TEXT) == "true"

    def test_double_array_coercion(self):
        result = t.coerce_value([1, 2, 3], t.DOUBLE_ARRAY)
        assert isinstance(result, np.ndarray)
        assert result.dtype == np.float64
        np.testing.assert_array_equal(result, [1.0, 2.0, 3.0])

    def test_text_array_coercion(self):
        assert t.coerce_value(["a", 1], t.TEXT_ARRAY) == ["a", "1"]

    def test_bad_array_raises(self):
        with pytest.raises(TypeMismatchError):
            t.coerce_value(["a", "b"], t.DOUBLE_ARRAY)

    def test_any_passes_through(self):
        marker = object()
        assert t.coerce_value(marker, t.ANY) is marker


class TestHelpers:
    def test_common_numeric_type(self):
        assert t.common_numeric_type(t.INTEGER, t.DOUBLE) is t.DOUBLE
        assert t.common_numeric_type(t.INTEGER, t.BIGINT) is t.BIGINT
        assert t.common_numeric_type(t.INTEGER, t.INTEGER) is t.INTEGER

    def test_values_equal_arrays(self):
        assert t.values_equal(np.array([1.0, 2.0]), [1.0, 2.0])
        assert not t.values_equal(np.array([1.0, 2.0]), [1.0, 3.0])

    def test_hashable_key_round_trip(self):
        key1 = t.hashable_key(np.array([1.0, 2.0]))
        key2 = t.hashable_key(np.array([1.0, 2.0]))
        assert key1 == key2
        assert hash(key1) == hash(key2)

    def test_format_value(self):
        assert t.format_value(None) == ""
        assert t.format_value(True) == "t"
        assert t.format_value(np.array([1.0, 2.0])) == "{1,2}"

    def test_numeric_flag(self):
        assert t.DOUBLE.is_numeric
        assert not t.TEXT.is_numeric
        assert not t.DOUBLE_ARRAY.is_numeric
