"""Tests for the catalog, the UDF/UDA registration helpers and query stats."""

import pytest

from repro import Database
from repro.engine.udf import AggregateBuilder, scalar_function
from repro.errors import CatalogError, FunctionError, ValidationError


class TestCatalog:
    def test_table_registration_and_lookup(self, db):
        db.create_table("a", [("v", "integer")])
        assert db.catalog.has_table("A")
        assert db.catalog.table_schema("a").names == ["v"]
        with pytest.raises(CatalogError):
            db.catalog.get_table("missing")

    def test_table_names_filter_temporary(self, db):
        db.create_table("perm", [("v", "integer")])
        db.create_table("tmp", [("v", "integer")], temporary=True)
        assert "tmp" in db.catalog.table_names()
        assert "tmp" not in db.catalog.table_names(include_temporary=False)

    def test_rename_conflict(self, db):
        db.create_table("a", [("v", "integer")])
        db.create_table("b", [("v", "integer")])
        with pytest.raises(CatalogError):
            db.catalog.rename_table("a", "b")

    def test_function_and_aggregate_listing(self, db):
        assert "abs" in db.catalog.function_names()
        assert "sum" in db.catalog.aggregate_names()
        with pytest.raises(CatalogError):
            db.catalog.get_function("nope")
        with pytest.raises(CatalogError):
            db.catalog.get_aggregate("nope")

    def test_duplicate_registration_requires_replace(self, db):
        db.create_function("f", lambda: 1)
        db.create_function("f", lambda: 2)  # replace=True default
        with pytest.raises(CatalogError):
            db.create_function("f", lambda: 3, replace=False)


class TestUDFHelpers:
    def test_scalar_function_decorator(self, db):
        @scalar_function(db, "double_it", return_type="double precision")
        def double_it(x):
            return 2.0 * x

        assert db.query_scalar("SELECT double_it(21)") == 42.0

    def test_aggregate_builder(self, db):
        (
            AggregateBuilder(db, "product")
            .with_initial_state(1.0)
            .with_transition(lambda state, x: state * x)
            .with_merge(lambda a, b: a * b)
            .register()
        )
        db.create_table("v", [("x", "double precision")])
        db.load_rows("v", [(2.0,), (3.0,), (4.0,)])
        assert db.query_scalar("SELECT product(x) FROM v") == 24.0

    def test_aggregate_builder_requires_transition(self, db):
        with pytest.raises(ValueError):
            AggregateBuilder(db, "broken").register()

    def test_udf_error_is_wrapped(self, db):
        db.create_function("boom", lambda x: 1 / 0)
        db.create_table("v", [("x", "double precision")])
        db.load_rows("v", [(1.0,)])
        with pytest.raises(FunctionError):
            db.execute("SELECT boom(x) FROM v")

    def test_strict_udf_skips_null(self, db):
        calls = []

        def traced(x):
            calls.append(x)
            return x

        db.create_function("traced", traced)
        db.create_table("v", [("x", "double precision")])
        db.load_rows("v", [(None,), (1.0,)])
        values = db.execute("SELECT traced(x) AS v FROM v").column("v")
        assert values == [None, 1.0]
        assert calls == [1.0]


class TestExecutionStats:
    def test_aggregate_query_records_per_segment_timings(self):
        db = Database(num_segments=6)
        db.create_table("n", [("v", "double precision")])
        db.load_rows("n", [(float(i),) for i in range(600)])
        result = db.execute("SELECT sum(v) FROM n")
        assert result.stats is not None
        timings = result.stats.aggregate_timings
        assert len(timings) == 1
        assert timings[0].num_segments == 6
        assert sum(timings[0].rows_per_segment) == 600
        assert result.stats.simulated_parallel_seconds <= result.stats.total_seconds + 1e-6

    def test_parallel_aggregation_can_be_disabled(self):
        db = Database(num_segments=6, parallel_aggregation=False)
        db.create_table("n", [("v", "double precision")])
        db.load_rows("n", [(float(i),) for i in range(60)])
        result = db.execute("SELECT sum(v) FROM n")
        assert result.stats.aggregate_timings[0].num_segments == 1

    def test_last_stats_updated(self, numbers_db):
        numbers_db.execute("SELECT count(*) FROM t")
        assert numbers_db.last_stats is not None
        assert numbers_db.last_stats.rows_scanned == 6

    def test_invalid_segment_count_rejected(self):
        with pytest.raises(ValidationError):
            Database(num_segments=0)
        db = Database()
        with pytest.raises(ValidationError):
            db.set_num_segments(0)
