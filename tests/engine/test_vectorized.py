"""Batched aggregate kernels: coverage for the vectorized tier.

Checks that (1) built-in batch kernels produce exactly what the
row-at-a-time fold produces, (2) order-sensitive aggregates (``array_agg``,
``string_agg``) have no batch kernel and deterministically take the fold,
(3) a failing batch kernel falls back instead of failing the query, and
(4) the ``string_agg`` delimiter semantics (per-row placement, no hard-coded
default) are PostgreSQL-like.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database
from repro.engine.aggregates import AggregateDefinition, builtin_aggregates
from repro.engine.segments import SegmentedAggregator
from repro.engine.vectorized import (
    ColumnBatch,
    builtin_batch_transitions,
    strict_filter_columns,
)


def get_builtin(name: str) -> AggregateDefinition:
    for definition in builtin_aggregates():
        if definition.name == name:
            return definition
    raise AssertionError(name)


class TestBatchKernels:
    def test_builtins_carry_batch_kernels(self):
        kernels = builtin_batch_transitions()
        for name in ("count", "sum", "avg", "min", "max", "stddev", "vector_sum"):
            assert name in kernels
            assert get_builtin(name).batch_transition is not None

    @pytest.mark.parametrize(
        "name", ["count", "sum", "avg", "min", "max", "var_samp", "stddev", "bool_or"]
    )
    def test_batch_fold_matches_row_fold(self, name):
        values = [float(i % 13) - 3.0 for i in range(1, 200)]
        values[10] = None
        values[50] = float("nan")
        rows = [(v,) for v in values]
        segments = [rows[i::4] for i in range(4)]

        definition = get_builtin(name)
        batched, _ = SegmentedAggregator(definition).run(segments)

        plain = AggregateDefinition(
            definition.name,
            definition.transition,
            merge=definition.merge,
            final=definition.final,
            initial_state=definition.initial_state,
            strict=definition.strict,
        )
        folded, _ = SegmentedAggregator(plain).run(segments)
        if isinstance(batched, float):
            assert batched == pytest.approx(folded, rel=1e-12)
        else:
            assert batched == folded

    def test_column_batch_streams_match_row_streams(self):
        definition = get_builtin("sum")
        values = [1.0, 2.0, None, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]
        columns = ColumnBatch((values,))
        rows = columns.rows()
        assert rows == [(v,) for v in values]
        value_batch, _ = SegmentedAggregator(definition).run([columns])
        value_rows, _ = SegmentedAggregator(definition).run([rows])
        assert value_batch == value_rows == 42.0

    def test_tiny_streams_take_the_row_fold(self):
        # Below the batch cutoff the row fold runs — same result, no batch call.
        calls = {"batch": 0}

        def counting_batch(state, values):
            calls["batch"] += 1
            return get_builtin("sum").batch_transition(state, values)

        definition = AggregateDefinition(
            "sum_counting",
            get_builtin("sum").transition,
            merge=get_builtin("sum").merge,
            initial_state=None,
            batch_transition=counting_batch,
        )
        value, _ = SegmentedAggregator(definition).run([[(1.0,), (2.0,)], [(3.0,)]])
        assert value == 6.0
        assert calls["batch"] == 0

    def test_strict_filter_matches_is_null_for_float_subclasses(self):
        # np.float64 NaN is a float subclass; both tiers must skip it.
        columns = ([1.0, np.float64("nan"), 3.0],)
        filtered, count = strict_filter_columns(columns)
        assert count == 2
        assert filtered[0] == [1.0, 3.0]

    def test_numpy_nan_from_udf_agrees_across_tiers(self):
        results = []
        for compiled in (True, False):
            db = Database(num_segments=2, compiled_execution=compiled)
            db.create_table("t", [("id", "integer"), ("a", "double precision")])
            db.load_rows("t", [(1, 1.0), (2, 2.0), (3, 0.0)])
            db.create_function(
                "inv",
                lambda x: np.float64(1.0) / x if x else np.float64("nan"),
                return_type="double precision",
            )
            results.append(db.query_scalar("SELECT sum(inv(a)) FROM t"))
        assert results[0] == pytest.approx(1.5)
        assert results[0] == pytest.approx(results[1])

    def test_strict_filter_drops_rows_with_any_null(self):
        columns = ([1.0, None, 3.0, float("nan")], ["x", "y", None, "w"])
        filtered, count = strict_filter_columns(columns)
        assert count == 1
        assert filtered[0] == [1.0]
        assert filtered[1] == ["x"]

    def test_strict_filter_clean_columns_not_copied(self):
        columns = ([1.0, 2.0], [3.0, 4.0])
        filtered, count = strict_filter_columns(columns)
        assert count == 2
        assert filtered[0] is columns[0] and filtered[1] is columns[1]

    def test_failing_batch_kernel_falls_back_to_fold(self):
        calls = {"batch": 0}

        def bad_batch(state, values):
            calls["batch"] += 1
            raise RuntimeError("ragged input")

        definition = AggregateDefinition(
            "sum_with_bad_batch",
            get_builtin("sum").transition,
            merge=get_builtin("sum").merge,
            initial_state=None,
            batch_transition=bad_batch,
        )
        stream = [[(float(i),) for i in range(1, 11)], [(float(i),) for i in range(11, 21)]]
        value, _ = SegmentedAggregator(definition).run(stream)
        assert value == sum(range(1, 21))
        assert calls["batch"] >= 1

    def test_vector_sum_batch_matches_fold(self):
        rows = [(np.array([float(i), float(2 * i)]),) for i in range(1, 11)] + [(None,)]
        segments = [rows]
        value, _ = SegmentedAggregator(get_builtin("vector_sum")).run(segments)
        np.testing.assert_allclose(value, [55.0, 110.0])


class TestOrderSensitiveAggregatesBypass:
    def test_array_and_string_agg_have_no_batch_kernel(self):
        assert get_builtin("array_agg").batch_transition is None
        assert get_builtin("string_agg").batch_transition is None
        assert "array_agg" not in builtin_batch_transitions()
        assert "string_agg" not in builtin_batch_transitions()

    def test_order_preserved_through_segmented_path(self):
        # Distributed by id, the per-segment fold order is insertion order;
        # the merged result must be deterministic run to run.
        db = Database(num_segments=4)
        db.create_table("ev", [("id", "integer"), ("tag", "text")], distributed_by="id")
        db.load_rows("ev", [(i, f"t{i}") for i in range(1, 13)])
        first = db.query_scalar("SELECT array_agg(tag) FROM ev")
        second = db.query_scalar("SELECT array_agg(tag) FROM ev")
        assert first == second
        assert sorted(first) == sorted(f"t{i}" for i in range(1, 13))

    def test_string_agg_matches_interpreted_tier(self):
        results = []
        for compiled in (True, False):
            db = Database(num_segments=3, compiled_execution=compiled)
            db.create_table("ev", [("id", "integer"), ("tag", "text")], distributed_by="id")
            db.load_rows("ev", [(i, f"t{i}") for i in range(1, 10)])
            results.append(db.query_scalar("SELECT string_agg(tag, '|') FROM ev"))
        assert results[0] == results[1]


class TestStringAggDelimiter:
    def test_two_argument_form_joins_with_delimiter(self, numbers_db):
        result = numbers_db.query_scalar("SELECT string_agg(grp, ', ') FROM t WHERE id <= 3")
        assert result == "a, a, b"

    def test_single_argument_form_concatenates(self, numbers_db):
        # No delimiter argument means plain concatenation, not a hidden ",".
        result = numbers_db.query_scalar("SELECT string_agg(grp) FROM t WHERE id <= 3")
        assert result == "aab"

    def test_empty_input_returns_null(self, numbers_db):
        assert numbers_db.query_scalar("SELECT string_agg(grp, ',') FROM t WHERE id > 99") is None

    def test_null_delimiter_concatenates_instead_of_dropping_rows(self, db):
        # PostgreSQL: string_agg is strict in the value only; a NULL delimiter
        # joins with nothing rather than discarding the row.
        db.create_table("s", [("id", "integer"), ("name", "text"), ("d", "text")])
        db.load_rows("s", [(1, "a", ","), (2, "b", ";"), (3, "c", None)])
        assert db.query_scalar("SELECT string_agg(name, d) FROM s") == "a;bc"
        assert db.query_scalar("SELECT string_agg(name) FROM s") == "abc"

    def test_null_values_skipped(self, db):
        db.create_table("s2", [("id", "integer"), ("name", "text")])
        db.load_rows("s2", [(1, "a"), (2, None), (3, "c")])
        assert db.query_scalar("SELECT string_agg(name, '-') FROM s2") == "a-c"
