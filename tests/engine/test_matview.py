"""Materialized views: creation, O(delta) upkeep, staleness, DDL semantics.

The contract under test: a materialized view's finalized contents are
byte-identical to running its defining query, whatever mix of incremental
delta folds and full recomputes produced them; INSERTs into the base table
maintain incremental views in O(delta); every other write leaves the view
stale and the next read (or REFRESH) recomputes; and views behave like
read-only tables everywhere else in the engine.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.errors import CatalogError
from repro.methods.linear_regression import install_linear_regression


def _make_db(**kwargs):
    db = Database(num_segments=kwargs.pop("num_segments", 2), **kwargs)
    db.execute("CREATE TABLE t (k INTEGER, v INTEGER, label TEXT)")
    db.load_rows(
        "t",
        [(i % 5, i * 10, "abc"[i % 3]) for i in range(20)],
    )
    return db


VIEW_SQL = "SELECT k, count(*) AS n, sum(v) AS total FROM t GROUP BY k"


def _assert_parity(db, view_name="mv", defining=VIEW_SQL):
    view_rows = db.execute(f"SELECT * FROM {view_name}").rows
    direct_rows = db.execute(defining).rows
    assert repr(view_rows) == repr(direct_rows)


# ---------------------------------------------------------------------------
# Core lifecycle
# ---------------------------------------------------------------------------


def test_create_and_read_matches_defining_query():
    db = _make_db()
    db.execute(f"CREATE MATERIALIZED VIEW mv AS {VIEW_SQL}")
    result = db.execute("SELECT * FROM mv")
    assert result.columns == ["k", "n", "total"]
    _assert_parity(db)


def test_insert_folds_delta_without_recompute():
    db = _make_db()
    db.execute(f"CREATE MATERIALIZED VIEW mv AS {VIEW_SQL}")
    db.execute("SELECT * FROM mv")
    view = db.catalog.get_matview("mv")
    recomputes_before = view.recomputes
    result = db.execute("INSERT INTO t VALUES (1, 999, 'x'), (7, 5, 'y')")
    assert result.stats.matview_deltas_applied == 1
    assert result.stats.matview_recomputes == 0
    _assert_parity(db)
    assert view.recomputes == recomputes_before  # read finalized, no rescan
    assert view.deltas_applied == 1


def test_new_group_from_delta_appears_in_scan_order():
    db = _make_db()
    db.execute(f"CREATE MATERIALIZED VIEW mv AS {VIEW_SQL}")
    db.execute("INSERT INTO t VALUES (77, 1, 'z')")
    _assert_parity(db)


def test_delete_marks_stale_and_read_recomputes():
    db = _make_db()
    db.execute(f"CREATE MATERIALIZED VIEW mv AS {VIEW_SQL}")
    view = db.catalog.get_matview("mv")
    db.execute("DELETE FROM t WHERE k = 1")
    assert view.is_stale(db.catalog)
    result = db.execute("SELECT * FROM mv")
    assert result.stats.matview_recomputes == 1
    assert not view.is_stale(db.catalog)
    _assert_parity(db)


def test_update_marks_stale():
    db = _make_db()
    db.execute(f"CREATE MATERIALIZED VIEW mv AS {VIEW_SQL}")
    db.execute("UPDATE t SET v = v + 1 WHERE k = 2")
    assert db.catalog.get_matview("mv").is_stale(db.catalog)
    _assert_parity(db)


def test_refresh_statement_forces_recompute():
    db = _make_db()
    db.execute(f"CREATE MATERIALIZED VIEW mv AS {VIEW_SQL}")
    view = db.catalog.get_matview("mv")
    db.execute("UPDATE t SET v = 0 WHERE k = 0")
    assert view.is_stale(db.catalog)
    result = db.execute("REFRESH MATERIALIZED VIEW mv")
    assert result.stats.matview_recomputes == 1
    assert not view.is_stale(db.catalog)
    _assert_parity(db)


def test_where_and_having_respected():
    db = _make_db()
    db.execute(
        "CREATE MATERIALIZED VIEW mv AS "
        "SELECT k, sum(v) AS total FROM t WHERE v > 30 GROUP BY k HAVING count(*) > 1"
    )
    _assert_parity(
        db,
        defining="SELECT k, sum(v) AS total FROM t WHERE v > 30 GROUP BY k HAVING count(*) > 1",
    )
    db.execute("INSERT INTO t VALUES (0, 31, 'q'), (0, 29, 'q'), (9, 100, 'q')")
    _assert_parity(
        db,
        defining="SELECT k, sum(v) AS total FROM t WHERE v > 30 GROUP BY k HAVING count(*) > 1",
    )


def test_ungrouped_aggregate_view():
    db = _make_db()
    db.execute(
        "CREATE MATERIALIZED VIEW mv AS SELECT count(*) AS n, min(v) AS lo, max(v) AS hi FROM t"
    )
    _assert_parity(db, defining="SELECT count(*) AS n, min(v) AS lo, max(v) AS hi FROM t")
    db.execute("INSERT INTO t VALUES (3, -5, 'a')")
    _assert_parity(db, defining="SELECT count(*) AS n, min(v) AS lo, max(v) AS hi FROM t")


def test_empty_base_table_view_has_aggregate_row():
    db = Database(num_segments=2)
    db.execute("CREATE TABLE empty_t (a INTEGER)")
    db.execute("CREATE MATERIALIZED VIEW mv AS SELECT count(*) AS n FROM empty_t")
    assert db.execute("SELECT * FROM mv").rows == [(0,)]
    db.execute("INSERT INTO empty_t VALUES (1), (2)")
    assert db.execute("SELECT * FROM mv").rows == [(2,)]


# ---------------------------------------------------------------------------
# Strategy selection and fallbacks
# ---------------------------------------------------------------------------


def test_join_view_uses_recompute_strategy():
    db = _make_db()
    db.execute("CREATE TABLE dim (k INTEGER, name TEXT)")
    db.load_rows("dim", [(i, f"name{i}") for i in range(5)])
    db.execute(
        "CREATE MATERIALIZED VIEW mv AS "
        "SELECT dim.name, count(*) AS n FROM t JOIN dim ON t.k = dim.k GROUP BY dim.name"
    )
    view = db.catalog.get_matview("mv")
    assert view.strategy == "recompute"
    _assert_parity(
        db,
        defining=(
            "SELECT dim.name, count(*) AS n FROM t JOIN dim ON t.k = dim.k GROUP BY dim.name"
        ),
    )
    db.execute("INSERT INTO t VALUES (1, 1, 'x')")
    _assert_parity(
        db,
        defining=(
            "SELECT dim.name, count(*) AS n FROM t JOIN dim ON t.k = dim.k GROUP BY dim.name"
        ),
    )


def test_order_by_and_distinct_views_recompute():
    db = _make_db()
    db.execute(
        "CREATE MATERIALIZED VIEW mv1 AS SELECT k, sum(v) AS s FROM t GROUP BY k ORDER BY k"
    )
    db.execute("CREATE MATERIALIZED VIEW mv2 AS SELECT DISTINCT label FROM t")
    assert db.catalog.get_matview("mv1").strategy == "recompute"
    assert db.catalog.get_matview("mv2").strategy == "recompute"
    _assert_parity(db, "mv1", "SELECT k, sum(v) AS s FROM t GROUP BY k ORDER BY k")
    _assert_parity(db, "mv2", "SELECT DISTINCT label FROM t")


def test_projection_view_recomputes():
    db = _make_db()
    db.execute("CREATE MATERIALIZED VIEW mv AS SELECT k, v FROM t WHERE v > 50")
    assert db.catalog.get_matview("mv").strategy == "recompute"
    db.execute("INSERT INTO t VALUES (8, 80, 'x')")
    _assert_parity(db, defining="SELECT k, v FROM t WHERE v > 50")


def test_view_over_view():
    db = _make_db()
    db.execute(f"CREATE MATERIALIZED VIEW mv AS {VIEW_SQL}")
    db.execute("CREATE MATERIALIZED VIEW mv2 AS SELECT max(total) AS top FROM mv")
    assert db.execute("SELECT * FROM mv2").rows == db.execute(
        f"SELECT max(total) AS top FROM ({VIEW_SQL}) sub"
    ).rows
    db.execute("INSERT INTO t VALUES (1, 100000, 'x')")
    assert db.execute("SELECT * FROM mv2").rows == db.execute(
        f"SELECT max(total) AS top FROM ({VIEW_SQL}) sub"
    ).rows


def test_volatile_function_rejected_from_incremental():
    db = _make_db()
    db.execute(
        "CREATE MATERIALIZED VIEW mv AS SELECT k, count(*) AS n FROM t WHERE random() >= 0 GROUP BY k"
    )
    assert db.catalog.get_matview("mv").strategy == "recompute"


def test_parameter_in_definition_rejected():
    db = _make_db()
    with pytest.raises(CatalogError):
        db.execute(
            "CREATE MATERIALIZED VIEW mv AS SELECT count(*) FROM t WHERE k = %(k)s"
        )


# ---------------------------------------------------------------------------
# DDL semantics
# ---------------------------------------------------------------------------


def test_dml_against_view_rejected():
    db = _make_db()
    db.execute(f"CREATE MATERIALIZED VIEW mv AS {VIEW_SQL}")
    for sql in (
        "INSERT INTO mv VALUES (1, 2, 3)",
        "UPDATE mv SET n = 0",
        "DELETE FROM mv",
        "TRUNCATE mv",
    ):
        with pytest.raises(CatalogError):
            db.execute(sql)


def test_name_collisions_both_directions():
    db = _make_db()
    db.execute(f"CREATE MATERIALIZED VIEW mv AS {VIEW_SQL}")
    with pytest.raises(CatalogError):
        db.execute("CREATE TABLE mv (a INTEGER)")
    with pytest.raises(CatalogError):
        db.execute(f"CREATE MATERIALIZED VIEW t AS {VIEW_SQL}")
    with pytest.raises(CatalogError):
        db.execute(f"CREATE MATERIALIZED VIEW mv AS {VIEW_SQL}")
    db.execute(f"CREATE MATERIALIZED VIEW IF NOT EXISTS mv AS {VIEW_SQL}")  # no-op


def test_drop_table_cascades_to_views():
    db = _make_db()
    db.execute(f"CREATE MATERIALIZED VIEW mv AS {VIEW_SQL}")
    db.execute("CREATE MATERIALIZED VIEW mv2 AS SELECT max(total) AS top FROM mv")
    db.execute("DROP TABLE t")
    assert not db.catalog.has_matview("mv")
    assert not db.catalog.has_matview("mv2")


def test_drop_matview():
    db = _make_db()
    db.execute(f"CREATE MATERIALIZED VIEW mv AS {VIEW_SQL}")
    db.execute("DROP MATERIALIZED VIEW mv")
    assert not db.catalog.has_matview("mv")
    with pytest.raises(CatalogError):
        db.execute("DROP MATERIALIZED VIEW mv")
    db.execute("DROP MATERIALIZED VIEW IF EXISTS mv")


def test_rename_base_table_blocked_while_views_depend():
    db = _make_db()
    db.execute(f"CREATE MATERIALIZED VIEW mv AS {VIEW_SQL}")
    with pytest.raises(CatalogError):
        db.execute("ALTER TABLE t RENAME TO t2")
    db.execute("DROP MATERIALIZED VIEW mv")
    db.execute("ALTER TABLE t RENAME TO t2")  # now fine


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


def test_catalog_matviews_listing():
    db = _make_db()
    db.execute(f"CREATE MATERIALIZED VIEW mv AS {VIEW_SQL}")
    db.execute("SELECT * FROM mv")
    (entry,) = db.catalog.matviews()
    assert entry["matviewname"] == "mv"
    assert entry["definition"] == VIEW_SQL
    assert entry["strategy"] == "incremental"
    assert entry["rows"] == 5
    assert entry["stale"] is False
    db.execute("DELETE FROM t WHERE k = 0")
    (entry,) = db.catalog.matviews()
    assert entry["stale"] is True


def test_explain_shows_matview_scan_and_freshness():
    db = _make_db()
    db.execute(f"CREATE MATERIALIZED VIEW mv AS {VIEW_SQL}")
    db.execute("SELECT * FROM mv")
    lines = [row[0] for row in db.execute("EXPLAIN SELECT * FROM mv WHERE n > 1").rows]
    assert any("MatView Scan on mv" in line for line in lines)
    assert any("Freshness: fresh" in line for line in lines)
    assert any("Maintenance: incremental" in line for line in lines)
    assert any("Filter: n > 1" in line for line in lines)
    db.execute("DELETE FROM t WHERE k = 1")
    lines = [row[0] for row in db.execute("EXPLAIN SELECT * FROM mv").rows]
    assert any("Freshness: stale" in line for line in lines)


def test_half_applied_delta_never_observable():
    db = _make_db()
    db.execute(f"CREATE MATERIALIZED VIEW mv AS {VIEW_SQL}")
    db.execute("SELECT * FROM mv")
    view = db.catalog.get_matview("mv")

    # Sabotage the fold so the next delta dies partway through.
    original = view._plan
    view._plan = None
    import repro.engine.matview as matview_module

    saved = matview_module._absorb_row

    def exploding(*args, **kwargs):
        raise RuntimeError("mid-fold crash")

    matview_module._absorb_row = exploding
    try:
        db.execute("INSERT INTO t VALUES (1, 7, 'x')")  # insert must succeed
    finally:
        matview_module._absorb_row = saved
    assert view.is_stale(db.catalog)  # force-staled, not half-applied
    _assert_parity(db)  # next read recomputes from the base table


# ---------------------------------------------------------------------------
# Continuously fresh method kernels (the payoff demo)
# ---------------------------------------------------------------------------


def test_linregr_view_stays_fresh_under_insert_stream():
    db = Database(num_segments=2)
    install_linear_regression(db)
    db.execute("CREATE TABLE obs (x DOUBLE PRECISION[], y DOUBLE PRECISION)")
    db.execute(
        "INSERT INTO obs VALUES (ARRAY[1.0, 2.0], 5.0), (ARRAY[2.0, 1.0], 4.0), "
        "(ARRAY[3.0, 3.0], 12.0)"
    )
    db.execute("CREATE MATERIALIZED VIEW model AS SELECT linregr(y, x) AS fit FROM obs")
    view = db.catalog.get_matview("model")
    assert view.strategy == "incremental"
    # Stream integer-valued observations in: float64 arithmetic on them is
    # exact, so the folded states match a rescan bit-for-bit.
    for step in range(6):
        db.execute(
            f"INSERT INTO obs VALUES (ARRAY[{step + 4}.0, {step}.0], {3 * step + 7}.0)"
        )
        view_fit = db.execute("SELECT * FROM model").rows
        direct_fit = db.execute("SELECT linregr(y, x) AS fit FROM obs").rows
        assert repr(view_fit) == repr(direct_fit)
    assert view.deltas_applied == 6
    assert view.recomputes == 1  # only the initial materialization


def test_naive_bayes_statistics_view_stays_fresh():
    db = Database(num_segments=2)
    db.execute("CREATE TABLE samples (cls INTEGER, f DOUBLE PRECISION)")
    db.load_rows("samples", [(i % 2, float(i)) for i in range(10)])
    db.execute(
        "CREATE MATERIALIZED VIEW class_stats AS "
        "SELECT cls, count(*) AS n, sum(f) AS total, avg(f) AS mean "
        "FROM samples GROUP BY cls"
    )
    defining = (
        "SELECT cls, count(*) AS n, sum(f) AS total, avg(f) AS mean "
        "FROM samples GROUP BY cls"
    )
    for i in range(10, 16):
        db.execute(f"INSERT INTO samples VALUES ({i % 2}, {float(i)})")
        assert repr(db.execute("SELECT * FROM class_stats").rows) == repr(
            db.execute(defining).rows
        )
    # The per-class sufficient statistics feed a Gaussian NB prior/likelihood:
    rows = db.execute("SELECT * FROM class_stats").rows
    priors = {cls: n for cls, n, _, _ in rows}
    assert priors == {0: 8, 1: 8}
