"""Unit tests for the UDA framework, built-in aggregates and the segmented runner."""

import numpy as np
import pytest

from repro.engine.aggregates import AggregateDefinition, AggregateRunner, builtin_aggregates
from repro.engine.segments import SegmentedAggregator
from repro.errors import FunctionError


def get_builtin(name):
    for definition in builtin_aggregates():
        if definition.name == name:
            return definition
    raise AssertionError(f"no builtin aggregate {name}")


class TestAggregateRunner:
    def test_serial_count_sum_avg(self):
        rows = [(float(i),) for i in range(1, 11)]
        assert AggregateRunner(get_builtin("count")).run(rows) == 10
        assert AggregateRunner(get_builtin("sum")).run(rows) == 55.0
        assert AggregateRunner(get_builtin("avg")).run(rows) == pytest.approx(5.5)

    def test_strict_skips_nulls(self):
        rows = [(1.0,), (None,), (3.0,)]
        assert AggregateRunner(get_builtin("count")).run(rows) == 2
        assert AggregateRunner(get_builtin("avg")).run(rows) == pytest.approx(2.0)

    def test_empty_input(self):
        assert AggregateRunner(get_builtin("count")).run([]) == 0
        assert AggregateRunner(get_builtin("sum")).run([]) is None
        assert AggregateRunner(get_builtin("avg")).run([]) is None

    def test_variance_and_stddev(self):
        rows = [(x,) for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]]
        variance = AggregateRunner(get_builtin("var_pop")).run(rows)
        assert variance == pytest.approx(4.0)
        stddev = AggregateRunner(get_builtin("stddev_pop")).run(rows)
        assert stddev == pytest.approx(2.0)
        sample_var = AggregateRunner(get_builtin("var_samp")).run(rows)
        assert sample_var == pytest.approx(np.var([2, 4, 4, 4, 5, 5, 7, 9], ddof=1))

    def test_min_max_bool_array_agg(self):
        rows = [(3.0,), (1.0,), (2.0,)]
        assert AggregateRunner(get_builtin("min")).run(rows) == 1.0
        assert AggregateRunner(get_builtin("max")).run(rows) == 3.0
        assert AggregateRunner(get_builtin("bool_and")).run([(True,), (False,)]) is False
        assert AggregateRunner(get_builtin("bool_or")).run([(True,), (False,)]) is True
        assert AggregateRunner(get_builtin("array_agg")).run(rows) == [3.0, 1.0, 2.0]

    def test_vector_sum(self):
        rows = [(np.array([1.0, 2.0]),), (np.array([3.0, 4.0]),)]
        result = AggregateRunner(get_builtin("vector_sum")).run(rows)
        np.testing.assert_array_equal(result, [4.0, 6.0])

    def test_segmented_equals_serial_for_all_builtins(self):
        rows = [(float(i),) for i in range(1, 101)]
        segments = [rows[i::4] for i in range(4)]
        for name in ("count", "sum", "avg", "min", "max", "var_samp", "stddev", "bool_or"):
            definition = get_builtin(name)
            runner = AggregateRunner(definition)
            serial = runner.run(rows)
            parallel = runner.run_segmented(segments)
            if isinstance(serial, float):
                assert parallel == pytest.approx(serial)
            else:
                assert parallel == serial

    def test_merge_required_for_parallel(self):
        definition = AggregateDefinition("no_merge", lambda s, x: (s or 0) + x, initial_state=0)
        runner = AggregateRunner(definition)
        with pytest.raises(FunctionError):
            runner.merge_states([1, 2])

    def test_merge_of_empty_segments(self):
        definition = get_builtin("sum")
        runner = AggregateRunner(definition)
        assert runner.run_segmented([[], [(5.0,)], []]) == 5.0
        assert runner.run_segmented([[], []]) is None


class TestSegmentedAggregator:
    def test_timings_reported_per_segment(self):
        definition = get_builtin("sum")
        segments = [[(float(i),)] * 50 for i in range(4)]
        value, timings = SegmentedAggregator(definition).run(segments)
        assert value == pytest.approx(sum(i * 50.0 for i in range(4)))
        assert timings.num_segments == 4
        assert timings.rows_per_segment == [50, 50, 50, 50]
        assert timings.serial_seconds >= timings.simulated_parallel_seconds
        assert timings.speedup >= 1.0

    def test_force_serial_single_stream(self):
        definition = get_builtin("sum")
        segments = [[(1.0,)] * 10, [(2.0,)] * 10]
        value, timings = SegmentedAggregator(definition).run(segments, force_serial=True)
        assert value == 30.0
        assert timings.num_segments == 1
        assert timings.merge_seconds == 0.0

    def test_custom_aggregate_round_trip(self):
        definition = AggregateDefinition(
            "sum_sq",
            lambda state, x: state + x * x,
            merge=lambda a, b: a + b,
            initial_state=0.0,
        )
        value, timings = SegmentedAggregator(definition).run([[(1.0,), (2.0,)], [(3.0,)]])
        assert value == pytest.approx(14.0)
        assert timings.aggregate_name == "sum_sq"
