"""Cost-based planner subsystem: ANALYZE statistics, access paths, EXPLAIN.

The core guarantee mirrors the join and compiled-execution suites: a query
returns **byte-identical rows** whether the planner rewrites its WHERE into
an index probe or the engine scans every segment row
(``Database(use_indexes=False)``), across random, NULL-heavy and empty
tables, under every supported predicate shape.
"""

from __future__ import annotations

import random

import pytest

from repro import Database
from repro.engine.parser import parse_statement
from repro.engine.parser.ast_nodes import (
    AnalyzeStatement,
    CreateIndexStatement,
    DropIndexStatement,
    ExplainStatement,
    SelectStatement,
)
from repro.engine.planner import collect_table_statistics


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


class TestParsing:
    def test_create_index_default_sorted(self):
        statement = parse_statement("CREATE INDEX i ON t (k)")
        assert isinstance(statement, CreateIndexStatement)
        assert (statement.name, statement.table, statement.column) == ("i", "t", "k")
        assert statement.method == "sorted"

    def test_create_index_using_hash(self):
        statement = parse_statement("CREATE INDEX IF NOT EXISTS i ON t USING hash (k)")
        assert statement.method == "hash"
        assert statement.if_not_exists

    def test_drop_index(self):
        statement = parse_statement("DROP INDEX IF EXISTS a, b")
        assert isinstance(statement, DropIndexStatement)
        assert statement.names == ["a", "b"] and statement.if_exists

    def test_analyze(self):
        assert parse_statement("ANALYZE").table is None
        assert parse_statement("ANALYZE t;").table == "t"
        assert isinstance(parse_statement("ANALYZE"), AnalyzeStatement)

    def test_explain(self):
        statement = parse_statement("EXPLAIN SELECT 1")
        assert isinstance(statement, ExplainStatement) and not statement.analyze
        assert isinstance(statement.target, SelectStatement)
        statement = parse_statement("EXPLAIN ANALYZE DELETE FROM t WHERE k = 1")
        assert statement.analyze


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------


def _stats_db(rows=1000) -> Database:
    db = Database(num_segments=4)
    db.execute("CREATE TABLE s (id integer, grp integer, v double precision, label text)")
    db.load_rows(
        "s",
        [
            (i, i % 20, float(i) if i % 10 else None, f"l{i % 5}")
            for i in range(rows)
        ],
    )
    return db


class TestStatistics:
    def test_analyze_collects_per_column_stats(self):
        db = _stats_db()
        assert db.execute("ANALYZE s").rowcount == 1
        statistics = db.catalog.get_statistics("s")
        assert statistics.row_count == 1000
        ident = statistics.column("id")
        assert ident.null_frac == 0.0
        assert (ident.min_value, ident.max_value) == (0, 999)
        # FM estimate on a unique column: right order of magnitude.
        assert 500 <= ident.n_distinct <= 2000
        grp = statistics.column("grp")
        assert 10 <= grp.n_distinct <= 40
        v = statistics.column("v")
        assert abs(v.null_frac - 0.1) < 0.01
        assert ident.histogram is not None and ident.histogram[0] == 0
        label = statistics.column("label")
        assert label.kind == "str"

    def test_staleness_tracking(self):
        db = _stats_db()
        db.execute("ANALYZE s")
        assert not db.catalog.get_statistics("s").is_stale(db.table("s"))
        db.execute("INSERT INTO s VALUES (5000, 1, 1.0, 'x')")
        assert db.catalog.get_statistics("s").is_stale(db.table("s"))
        listing = db.catalog.statistics("s")
        assert listing and all(row["stale"] for row in listing)
        db.execute("ANALYZE s")
        assert not any(row["stale"] for row in db.catalog.statistics("s"))

    def test_statistics_listing_shape(self):
        db = _stats_db()
        db.analyze("s")  # programmatic analog of ANALYZE s
        rows = db.catalog.statistics()
        assert {row["columnname"] for row in rows} == {"id", "grp", "v", "label"}
        assert all(row["tablename"] == "s" for row in rows)
        assert all(row["row_count"] == 1000 for row in rows)

    def test_empty_table_statistics(self):
        db = Database()
        db.execute("CREATE TABLE e (a integer)")
        statistics = collect_table_statistics(db.table("e"))
        assert statistics.row_count == 0
        assert statistics.column("a").n_distinct == 0.0

    def test_analyze_all_tables(self):
        db = _stats_db()
        db.execute("CREATE TABLE other (x integer)")
        assert db.execute("ANALYZE").rowcount == 2
        assert db.catalog.get_statistics("other") is not None

    def test_auto_analyze_refreshes_on_drift(self):
        db = Database(auto_analyze=True)
        db.execute("CREATE TABLE a (id integer, k integer)")
        db.load_rows("a", [(i, i % 5) for i in range(500)])
        db.execute("CREATE INDEX a_k ON a USING hash (k)")
        db.execute("SELECT * FROM a WHERE k = 1")  # plans → analyzes
        first = db.catalog.get_statistics("a")
        assert first is not None and first.row_count == 500
        db.load_rows("a", [(1000 + i, i % 5) for i in range(500)])  # > 20% drift
        db.execute("SELECT * FROM a WHERE k = 1")
        assert db.catalog.get_statistics("a").row_count == 1000


# ---------------------------------------------------------------------------
# Access-path selection and scan accounting
# ---------------------------------------------------------------------------


def _indexed_db(rows=2000, *, analyze=True, **kwargs) -> Database:
    db = Database(num_segments=4, **kwargs)
    db.execute("CREATE TABLE t (id integer, k integer, v double precision, label text)")
    db.load_rows(
        "t",
        [(i, i % 100, float(i % 7), f"l{i % 4}" if i % 9 else None) for i in range(rows)],
    )
    db.execute("CREATE INDEX t_id ON t (id)")
    db.execute("CREATE INDEX t_k ON t USING hash (k)")
    db.execute("CREATE INDEX t_label ON t (label)")
    if analyze:
        db.execute("ANALYZE t")
    return db


class TestAccessPaths:
    def test_point_lookup_uses_index_and_counts_touched_rows(self):
        db = _indexed_db()
        result = db.execute("SELECT * FROM t WHERE id = 42")
        assert len(result.rows) == 1
        detail = db.last_stats.scan_details[0]
        assert detail.access == "index" and detail.index_name == "t_id"
        # Honest accounting: the probe touched 1 row, matched 1.
        assert db.last_stats.rows_scanned == 1
        assert db.last_stats.rows_matched == 1

    def test_seq_scan_touches_all_matches_few(self):
        db = _indexed_db(use_indexes=False)
        db.execute("SELECT * FROM t WHERE id = 42")
        assert db.last_stats.rows_scanned == 2000
        assert db.last_stats.rows_matched == 1
        assert db.last_stats.scan_details[0].access == "seq"

    def test_hash_index_preferred_for_equality(self):
        db = _indexed_db()
        db.execute("SELECT count(*) FROM t WHERE k = 7")
        assert db.last_stats.scan_details[0].index_name == "t_k"

    def test_range_probe_with_residual(self):
        db = _indexed_db()
        result = db.execute("SELECT id FROM t WHERE id >= 100 AND id < 140 AND v > 2.0")
        detail = db.last_stats.scan_details[0]
        assert detail.access == "index" and detail.index_name == "t_id"
        assert db.last_stats.rows_scanned == 40  # probe results
        assert db.last_stats.rows_matched == len(result.rows) < 40

    def test_wide_range_prefers_seq_scan(self):
        db = _indexed_db()
        db.execute("SELECT count(*) FROM t WHERE id >= 10")  # ~100% selectivity
        assert db.last_stats.scan_details[0].access == "seq"

    def test_unindexable_where_stays_seq(self):
        db = _indexed_db()
        db.execute("SELECT count(*) FROM t WHERE v = 3.0")  # no index on v
        assert db.last_stats.scan_details[0].access == "seq"
        db.execute("SELECT count(*) FROM t WHERE id = 5 OR k = 3")  # OR: no conjunct
        assert db.last_stats.scan_details[0].access == "seq"

    def test_volatile_function_disables_index_path(self):
        db = _indexed_db()
        db.execute("SELECT count(*) FROM t WHERE id = 5 AND random() >= 0.0")
        assert db.last_stats.scan_details[0].access == "seq"

    def test_use_indexes_flag(self):
        db = _indexed_db(use_indexes=False)
        db.execute("SELECT * FROM t WHERE id = 5")
        assert db.last_stats.scan_details[0].access == "seq"

    def test_parameter_probe_value(self):
        db = _indexed_db()
        result = db.execute("SELECT id FROM t WHERE id = %(target)s", {"target": 77})
        assert result.rows == [(77,)]
        assert db.last_stats.scan_details[0].access == "index"

    def test_null_equality_probes_nothing(self):
        db = _indexed_db()
        result = db.execute("SELECT id FROM t WHERE id = NULL")
        assert result.rows == []
        assert db.last_stats.rows_scanned == 0
        assert db.last_stats.scan_details[0].access == "index"


# ---------------------------------------------------------------------------
# Parity corpus: use_indexes on vs off, byte-identical
# ---------------------------------------------------------------------------


def _random_rows(rng, count, null_fraction):
    rows = []
    for i in range(count):
        ident = i
        k = rng.randrange(0, 25) if rng.random() > null_fraction else None
        v = round(rng.uniform(-5, 5), 3) if rng.random() > null_fraction else None
        label = rng.choice(["a", "b", "c", "d"]) if rng.random() > null_fraction else None
        rows.append((ident, k, v, label))
    return rows


def _paired_dbs(rows):
    pair = []
    for use_indexes in (True, False):
        db = Database(num_segments=3, use_indexes=use_indexes)
        db.execute(
            "CREATE TABLE p (id integer, k integer, v double precision, label text) "
            "DISTRIBUTED BY (id)"
        )
        db.load_rows("p", rows)
        db.execute("CREATE INDEX p_id ON p (id)")
        db.execute("CREATE INDEX p_k ON p USING hash (k)")
        db.execute("CREATE INDEX p_label ON p (label)")
        db.execute("CREATE INDEX p_v ON p (v)")
        db.execute("ANALYZE p")
        pair.append(db)
    return pair


_PARITY_QUERIES = [
    "SELECT * FROM p WHERE id = 17",
    "SELECT * FROM p WHERE id = -1",
    "SELECT * FROM p WHERE k = 3",
    "SELECT * FROM p WHERE k = 3 AND v > 0",
    "SELECT * FROM p WHERE label = 'b' ORDER BY id",
    "SELECT * FROM p WHERE label = 'b' AND k = 2",
    "SELECT id, v FROM p WHERE id >= 5 AND id < 25",
    "SELECT id FROM p WHERE id BETWEEN 10 AND 30 ORDER BY id DESC",
    "SELECT * FROM p WHERE v >= 4.0",
    "SELECT * FROM p WHERE v > 4.5 AND v <= 5.0",
    "SELECT * FROM p WHERE 12 = id",
    "SELECT * FROM p WHERE id = 3 + 4",
    "SELECT * FROM p WHERE k = NULL",
    "SELECT * FROM p WHERE k IS NULL ORDER BY id",
    "SELECT count(*), sum(v), min(id) FROM p WHERE k = 5",
    "SELECT label, count(*) FROM p WHERE id < 40 GROUP BY label ORDER BY label NULLS LAST",
    "SELECT k, avg(v) FROM p WHERE k = 7 GROUP BY k",
    "SELECT * FROM p WHERE id = 8 OR k = 3 ORDER BY id",
    "SELECT id FROM p WHERE id > 10 AND id < 5",
    "SELECT DISTINCT label FROM p WHERE k = 4 ORDER BY label NULLS LAST",
    "SELECT id FROM p WHERE id >= 90 ORDER BY v NULLS FIRST LIMIT 5",
    "SELECT p.id FROM p WHERE p.id = 33",
    "SELECT upper(label) FROM p WHERE label = 'c' AND id % 2 = 0 ORDER BY id",
]


@pytest.mark.parametrize(
    "shape,count,null_fraction",
    [("random", 120, 0.0), ("null_heavy", 120, 0.5), ("small", 7, 0.2), ("empty", 0, 0.0)],
)
def test_parity_corpus(shape, count, null_fraction):
    rng = random.Random(hash(shape) & 0xFFFF)
    rows = _random_rows(rng, count, null_fraction)
    indexed, scan = _paired_dbs(rows)
    for query in _PARITY_QUERIES:
        left = indexed.execute(query)
        right = scan.execute(query)
        assert left.columns == right.columns, query
        assert left.rows == right.rows, (shape, query)


def test_parity_with_parameters():
    rng = random.Random(3)
    indexed, scan = _paired_dbs(_random_rows(rng, 100, 0.2))
    query = "SELECT * FROM p WHERE id = %(a)s AND v > %(b)s"
    parameters = {"a": 12, "b": -10.0}
    assert indexed.execute(query, parameters).rows == scan.execute(query, parameters).rows


def test_parity_under_dml():
    rng = random.Random(9)
    indexed, scan = _paired_dbs(_random_rows(rng, 100, 0.3))
    steps = [
        "UPDATE p SET v = v + 1 WHERE k = 3",
        "DELETE FROM p WHERE id >= 80",
        "INSERT INTO p VALUES (500, 3, 0.5, 'z')",
        "TRUNCATE p",
        "INSERT INTO p VALUES (1, 1, 1.0, 'a'), (2, NULL, NULL, NULL)",
    ]
    for step in steps:
        indexed.execute(step)
        scan.execute(step)
        for query in _PARITY_QUERIES:
            assert indexed.execute(query).rows == scan.execute(query).rows, (step, query)


# ---------------------------------------------------------------------------
# Cost-driven joins
# ---------------------------------------------------------------------------


class TestJoinCosting:
    def _join_db(self, *, hash_joins=True):
        db = Database(num_segments=4, hash_joins=hash_joins)
        db.execute("CREATE TABLE small (k integer, name text)")
        db.load_rows("small", [(i, f"n{i}") for i in range(10)])
        db.execute("CREATE TABLE big (id integer, k integer)")
        db.load_rows("big", [(i, i % 20) for i in range(2000)])
        return db

    def test_small_left_builds_left(self):
        db = self._join_db()
        query = (
            "SELECT s.k, b.id FROM small s JOIN big b ON s.k = b.k "
            "ORDER BY s.k, b.id LIMIT 50"
        )
        result = db.execute(query)
        assert db.last_stats.join_strategy == "hash_reversed"
        nested = self._join_db(hash_joins=False)
        assert result.rows == nested.execute(query).rows

    def test_reversed_left_join_parity(self):
        db = self._join_db()
        db.execute("INSERT INTO small VALUES (999, 'unmatched')")
        query = "SELECT s.k, s.name, b.id FROM small s LEFT JOIN big b ON s.k = b.k"
        result = db.execute(query)
        assert db.last_stats.join_strategy == "hash_reversed"
        nested = self._join_db(hash_joins=False)
        nested.execute("INSERT INTO small VALUES (999, 'unmatched')")
        assert result.rows == nested.execute(query).rows

    def test_big_build_side_keeps_standard_orientation(self):
        db = self._join_db()
        db.execute("SELECT count(*) FROM big b JOIN small s ON b.k = s.k")
        assert db.last_stats.join_strategy == "hash"

    def test_join_step_estimates_recorded(self):
        db = self._join_db()
        db.execute("ANALYZE")
        db.execute("SELECT count(*) FROM big b JOIN small s ON b.k = s.k")
        steps = db.last_stats.join_steps
        assert len(steps) == 1
        assert steps[0].estimated_rows == 2000.0


# ---------------------------------------------------------------------------
# EXPLAIN / EXPLAIN ANALYZE
# ---------------------------------------------------------------------------


class TestExplain:
    def test_explain_shows_index_scan(self):
        db = _indexed_db()
        text = db.explain("SELECT * FROM t WHERE id = 42")
        assert "Index Scan using t_id on t" in text
        assert "Index Cond: id = 42" in text
        assert "rows=" in text

    def test_explain_does_not_execute(self):
        db = _indexed_db()
        db.explain("DELETE FROM t WHERE id = 1")
        assert db.execute("SELECT count(*) FROM t").scalar() == 2000

    def test_explain_analyze_reports_actuals(self):
        db = _indexed_db()
        text = db.explain("SELECT count(*) FROM t WHERE id >= 100 AND id < 120", analyze=True)
        assert "Index Scan" in text
        assert "actual_rows=20" in text
        assert "Rows matched by WHERE: 20" in text
        assert "Execution time:" in text

    def test_explain_analyze_executes_dml(self):
        db = _indexed_db()
        text = db.explain("DELETE FROM t WHERE id = 5", analyze=True)
        assert "Delete on t" in text
        assert db.execute("SELECT count(*) FROM t WHERE id = 5").scalar() == 0

    def test_explain_seq_scan_with_filter(self):
        db = _indexed_db()
        text = db.explain("SELECT * FROM t WHERE v = 1.0")
        assert "Seq Scan on t" in text and "Filter: v = 1.0" in text

    def test_explain_join_and_aggregate_nodes(self):
        db = _indexed_db()
        db.execute("CREATE TABLE d (k integer, name text)")
        db.load_rows("d", [(i, f"d{i}") for i in range(100)])
        text = db.explain(
            "SELECT d.name, count(*) FROM t JOIN d ON t.k = d.k "
            "GROUP BY d.name ORDER BY d.name LIMIT 3"
        )
        assert "Hash Join" in text
        assert "HashAggregate" in text
        assert "Sort" in text and "Limit" in text

    def test_explain_analyze_join_strategy_labels(self):
        db = _indexed_db()
        db.execute("CREATE TABLE d (k integer, name text)")
        db.load_rows("d", [(i, f"d{i}") for i in range(100)])
        text = db.explain("SELECT count(*) FROM t JOIN d ON t.k = d.k", analyze=True)
        assert "Hash Join" in text and "actual_rows=" in text

    def test_explain_union_and_subquery(self):
        db = _indexed_db()
        text = db.explain("SELECT id FROM t WHERE id = 1 UNION SELECT id FROM t WHERE id = 2")
        assert "Append" in text
        text = db.explain("SELECT n FROM (SELECT count(*) AS n FROM t) s")
        assert "Subquery Scan on s" in text

    def test_explain_analyze_subquery_annotation_alignment(self):
        """A subquery's inner scans run under their *own* stats object, so
        EXPLAIN ANALYZE must not let the inner plan nodes consume the outer
        statement's scan details (which would shift every later annotation
        onto the wrong node)."""
        db = Database(num_segments=2)
        db.execute("CREATE TABLE x (a integer)")
        db.load_rows("x", [(i % 10,) for i in range(10)])
        text = db.explain(
            "SELECT * FROM (SELECT a FROM x WHERE a > 4) s, x WHERE s.a = x.a",
            analyze=True,
        )
        lines = text.splitlines()
        subquery = next(line for line in lines if "Subquery Scan on s" in line)
        assert "actual_rows=5" in subquery  # the subquery produced 5 rows
        outer_scan = next(
            line for line in lines if "Seq Scan on x" in line and "actual_rows" in line
        )
        assert "actual_rows=10" in outer_scan  # the outer base scan touched 10

    def test_explain_output_is_single_column(self):
        db = _indexed_db()
        result = db.execute("EXPLAIN SELECT * FROM t WHERE id = 1")
        assert result.columns == ["QUERY PLAN"]
        assert all(len(row) == 1 for row in result.rows)
