"""merge_states correctness for every built-in aggregate.

Two-phase aggregation is only sound if folding per-segment partial states and
merging them equals one serial fold — for *any* partitioning of the rows,
including empty segments and NULL-heavy ones.  This is the invariant both the
simulated-parallel path and the real worker-pool tier rely on, so it gets
exhaustive coverage: every built-in aggregate, many random contiguous splits
(contiguity preserves the row order that ``array_agg``/``string_agg`` are
sensitive to), plus adversarial NULL/empty cases.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.engine.aggregates import AggregateRunner, builtin_aggregates


AGGREGATES = {definition.name: definition for definition in builtin_aggregates()}


def _value_rows(kind: str, rng: random.Random, *, null_rate: float = 0.2, size: int = 57):
    """Argument-tuple rows appropriate for one aggregate's signature."""
    rows = []
    for i in range(size):
        if kind == "count":
            rows.append((1,))
            continue
        is_null = rng.random() < null_rate
        if kind == "float":
            value = None if is_null else rng.uniform(-1e3, 1e3)
            rows.append((value,))
        elif kind == "bool":
            rows.append((None if is_null else rng.random() < 0.5,))
        elif kind == "text":
            rows.append((None if is_null else f"v{i % 7}",))
        elif kind == "text_delim":
            value = None if is_null else f"v{i % 7}"
            delimiter = None if rng.random() < 0.2 else rng.choice([",", "|", ""])
            rows.append((value, delimiter))
        elif kind == "vector":
            value = None if is_null else [rng.uniform(-5, 5) for _ in range(4)]
            rows.append((np.asarray(value) if value is not None else None,))
        else:  # pragma: no cover
            raise AssertionError(kind)
    return rows


#: aggregate name -> argument kind.
SIGNATURES = {
    "count": "count",
    "sum": "float",
    "avg": "float",
    "min": "float",
    "max": "float",
    "var_samp": "float",
    "var_pop": "float",
    "variance": "float",
    "stddev": "float",
    "stddev_pop": "float",
    "array_agg": "text",
    "string_agg": "text_delim",
    "bool_and": "bool",
    "bool_or": "bool",
    "vector_sum": "vector",
}


def _random_contiguous_split(rows, rng: random.Random, num_segments: int):
    """Split rows into ``num_segments`` contiguous (possibly empty) chunks."""
    cuts = sorted(rng.randint(0, len(rows)) for _ in range(num_segments - 1))
    bounds = [0] + cuts + [len(rows)]
    return [rows[bounds[i] : bounds[i + 1]] for i in range(num_segments)]


def _assert_equal(merged, serial, label: str):
    if isinstance(serial, float) and isinstance(merged, float):
        if math.isnan(serial):
            assert math.isnan(merged), label
        else:
            assert merged == pytest.approx(serial, rel=1e-9, abs=1e-9), label
    elif isinstance(serial, np.ndarray) or isinstance(merged, np.ndarray):
        np.testing.assert_allclose(
            np.asarray(merged, dtype=np.float64),
            np.asarray(serial, dtype=np.float64),
            rtol=1e-9,
            err_msg=label,
        )
    else:
        assert merged == serial, label


@pytest.mark.parametrize("name", sorted(SIGNATURES))
@pytest.mark.parametrize("null_rate", [0.0, 0.2, 0.9])
def test_random_segment_splits_equal_serial_fold(name, null_rate):
    definition = AGGREGATES[name]
    runner = AggregateRunner(definition)
    rng = random.Random(hash((name, null_rate)) & 0xFFFF)
    rows = _value_rows(SIGNATURES[name], rng, null_rate=null_rate)
    serial = definition.finalize(runner.fold(list(rows)))
    for trial in range(10):
        num_segments = rng.choice([2, 3, 4, 7, 12])
        segments = _random_contiguous_split(rows, rng, num_segments)
        merged = runner.run_segmented(segments)
        _assert_equal(merged, serial, f"{name} null_rate={null_rate} trial={trial}")


@pytest.mark.parametrize("name", sorted(SIGNATURES))
def test_empty_and_all_null_segments(name):
    definition = AGGREGATES[name]
    runner = AggregateRunner(definition)
    rng = random.Random(99)
    rows = _value_rows(SIGNATURES[name], rng, null_rate=0.3, size=23)
    serial = definition.finalize(runner.fold(list(rows)))
    nulls = [] if name == "count" else [(None,) * len(rows[0])] * 5
    # Empty leading/trailing segments and an all-NULL segment inserted at the
    # end must not change the result (strict aggregates skip NULL rows; the
    # non-strict ones — array_agg/string_agg — handle value-NULLs themselves).
    if definition.strict or name in ("array_agg",):
        segments = [[], list(rows), [], nulls if definition.strict else []]
        merged = runner.run_segmented(segments)
        _assert_equal(merged, serial, f"{name} with empty/all-NULL segments")
    # All segments empty: same as folding nothing at all.
    empty_serial = definition.finalize(runner.fold([]))
    empty_merged = runner.run_segmented([[], [], []])
    _assert_equal(empty_merged, empty_serial, f"{name} all segments empty")


def test_array_agg_null_values_survive_merge():
    definition = AGGREGATES["array_agg"]
    runner = AggregateRunner(definition)
    rows = [("a",), (None,), ("b",), (None,)]
    assert runner.run_segmented([rows[:2], rows[2:]]) == ["a", None, "b", None]


def test_string_agg_null_values_skipped_but_null_delims_kept():
    definition = AGGREGATES["string_agg"]
    runner = AggregateRunner(definition)
    rows = [("a", ","), (None, ","), ("b", None), ("c", "|")]
    serial = definition.finalize(runner.fold(list(rows)))
    merged = runner.run_segmented([rows[:1], rows[1:3], [], rows[3:]])
    assert merged == serial == "ab|c"
