"""merge_states correctness for every built-in aggregate.

Two-phase aggregation is only sound if folding per-segment partial states and
merging them equals one serial fold — for *any* partitioning of the rows,
including empty segments and NULL-heavy ones.  This is the invariant both the
simulated-parallel path and the real worker-pool tier rely on, so it gets
exhaustive coverage: every built-in aggregate, many random contiguous splits
(contiguity preserves the row order that ``array_agg``/``string_agg`` are
sensitive to), plus adversarial NULL/empty cases.
"""

from __future__ import annotations

import math
import random
import zlib

import numpy as np
import pytest

from repro.engine.aggregates import AggregateRunner, builtin_aggregates


AGGREGATES = {definition.name: definition for definition in builtin_aggregates()}


def _value_rows(kind: str, rng: random.Random, *, null_rate: float = 0.2, size: int = 57):
    """Argument-tuple rows appropriate for one aggregate's signature."""
    rows = []
    for i in range(size):
        if kind == "count":
            rows.append((1,))
            continue
        is_null = rng.random() < null_rate
        if kind == "float":
            value = None if is_null else rng.uniform(-1e3, 1e3)
            rows.append((value,))
        elif kind == "bool":
            rows.append((None if is_null else rng.random() < 0.5,))
        elif kind == "text":
            rows.append((None if is_null else f"v{i % 7}",))
        elif kind == "text_delim":
            value = None if is_null else f"v{i % 7}"
            delimiter = None if rng.random() < 0.2 else rng.choice([",", "|", ""])
            rows.append((value, delimiter))
        elif kind == "vector":
            value = None if is_null else [rng.uniform(-5, 5) for _ in range(4)]
            rows.append((np.asarray(value) if value is not None else None,))
        else:  # pragma: no cover
            raise AssertionError(kind)
    return rows


#: aggregate name -> argument kind.
SIGNATURES = {
    "count": "count",
    "sum": "float",
    "avg": "float",
    "min": "float",
    "max": "float",
    "var_samp": "float",
    "var_pop": "float",
    "variance": "float",
    "stddev": "float",
    "stddev_pop": "float",
    "array_agg": "text",
    "string_agg": "text_delim",
    "bool_and": "bool",
    "bool_or": "bool",
    "vector_sum": "vector",
}


def _random_contiguous_split(rows, rng: random.Random, num_segments: int):
    """Split rows into ``num_segments`` contiguous (possibly empty) chunks."""
    cuts = sorted(rng.randint(0, len(rows)) for _ in range(num_segments - 1))
    bounds = [0] + cuts + [len(rows)]
    return [rows[bounds[i] : bounds[i + 1]] for i in range(num_segments)]


def _assert_equal(merged, serial, label: str):
    if isinstance(serial, float) and isinstance(merged, float):
        if math.isnan(serial):
            assert math.isnan(merged), label
        else:
            assert merged == pytest.approx(serial, rel=1e-9, abs=1e-9), label
    elif isinstance(serial, np.ndarray) or isinstance(merged, np.ndarray):
        np.testing.assert_allclose(
            np.asarray(merged, dtype=np.float64),
            np.asarray(serial, dtype=np.float64),
            rtol=1e-9,
            err_msg=label,
        )
    else:
        assert merged == serial, label


@pytest.mark.parametrize("name", sorted(SIGNATURES))
@pytest.mark.parametrize("null_rate", [0.0, 0.2, 0.9])
def test_random_segment_splits_equal_serial_fold(name, null_rate):
    definition = AGGREGATES[name]
    runner = AggregateRunner(definition)
    rng = random.Random(hash((name, null_rate)) & 0xFFFF)
    rows = _value_rows(SIGNATURES[name], rng, null_rate=null_rate)
    serial = definition.finalize(runner.fold(list(rows)))
    for trial in range(10):
        num_segments = rng.choice([2, 3, 4, 7, 12])
        segments = _random_contiguous_split(rows, rng, num_segments)
        merged = runner.run_segmented(segments)
        _assert_equal(merged, serial, f"{name} null_rate={null_rate} trial={trial}")


@pytest.mark.parametrize("name", sorted(SIGNATURES))
def test_empty_and_all_null_segments(name):
    definition = AGGREGATES[name]
    runner = AggregateRunner(definition)
    rng = random.Random(99)
    rows = _value_rows(SIGNATURES[name], rng, null_rate=0.3, size=23)
    serial = definition.finalize(runner.fold(list(rows)))
    nulls = [] if name == "count" else [(None,) * len(rows[0])] * 5
    # Empty leading/trailing segments and an all-NULL segment inserted at the
    # end must not change the result (strict aggregates skip NULL rows; the
    # non-strict ones — array_agg/string_agg — handle value-NULLs themselves).
    if definition.strict or name in ("array_agg",):
        segments = [[], list(rows), [], nulls if definition.strict else []]
        merged = runner.run_segmented(segments)
        _assert_equal(merged, serial, f"{name} with empty/all-NULL segments")
    # All segments empty: same as folding nothing at all.
    empty_serial = definition.finalize(runner.fold([]))
    empty_merged = runner.run_segmented([[], [], []])
    _assert_equal(empty_merged, empty_serial, f"{name} all segments empty")


def test_array_agg_null_values_survive_merge():
    definition = AGGREGATES["array_agg"]
    runner = AggregateRunner(definition)
    rows = [("a",), (None,), ("b",), (None,)]
    assert runner.run_segmented([rows[:2], rows[2:]]) == ["a", None, "b", None]


def test_string_agg_null_values_skipped_but_null_delims_kept():
    definition = AGGREGATES["string_agg"]
    runner = AggregateRunner(definition)
    rows = [("a", ","), (None, ","), ("b", None), ("c", "|")]
    serial = definition.finalize(runner.fold(list(rows)))
    merged = runner.run_segmented([rows[:1], rows[1:3], [], rows[3:]])
    assert merged == serial == "ab|c"


# ---------------------------------------------------------------------------
# Newly picklable method-tier UDA kernels (igd, quantiles, fm, countmin,
# cg_matvec).  Hash-based and list-based kernels are partition-invariant
# (any segmentation equals the serial fold); the model-averaging and
# reservoir kernels are partition-*dependent* by design, so for them the
# invariant under test is associativity of the merge operator itself — the
# property the coordinator's left-to-right merge of per-segment partial
# tables relies on.
# ---------------------------------------------------------------------------


def _method_kernel_definitions():
    import numpy as np

    from repro.convex.igd import make_igd_aggregate
    from repro.convex.objectives import LeastSquaresObjective
    from repro.engine.aggregates import AggregateDefinition
    from repro.methods.quantiles import ReservoirQuantileKernel
    from repro.methods.sketches.countmin import CountMinKernel
    from repro.methods.sketches.fm import FMSketchKernel
    from repro.support.conjugate_gradient import CGMatvecKernel

    fm = FMSketchKernel(num_maps=8)
    cm = CountMinKernel(eps=0.1, delta=0.1)
    cg = CGMatvecKernel(np.array([1.0, -2.0, 0.5]))
    reservoir = ReservoirQuantileKernel(reservoir_size=16, seed=3)
    return {
        "fmsketch": AggregateDefinition(
            "fmsketch", fm.transition, merge=fm.merge, initial_state=None, strict=True
        ),
        "cmsketch": AggregateDefinition(
            "cmsketch", cm.transition, merge=cm.merge, initial_state=None, strict=True
        ),
        "cg_matvec": AggregateDefinition(
            "cg_matvec", cg.transition, merge=cg.merge, final=cg.final, initial_state=list
        ),
        "quantile_reservoir": AggregateDefinition(
            "quantile_reservoir",
            reservoir.transition,
            merge=reservoir.merge,
            final=reservoir.final,
            initial_state=None,
            strict=True,
        ),
        "igd_epoch": make_igd_aggregate(LeastSquaresObjective(3)),
    }


def _method_kernel_rows(name: str, rng: random.Random, size: int = 41):
    import numpy as np

    if name in ("fmsketch", "cmsketch"):
        return [(None if rng.random() < 0.2 else f"v{i % 9}",) for i in range(size)]
    if name == "cg_matvec":
        return [(i, [rng.uniform(-2, 2) for _ in range(3)]) for i in range(size)]
    if name == "quantile_reservoir":
        return [(None if rng.random() < 0.2 else rng.uniform(-50, 50),) for i in range(size)]
    if name == "igd_epoch":
        return [
            (None, 0.01, rng.uniform(-1, 1), np.array([rng.uniform(-1, 1) for _ in range(3)]))
            for _ in range(size)
        ]
    raise AssertionError(name)


@pytest.mark.parametrize("name", ["fmsketch", "cmsketch", "cg_matvec"])
def test_partition_invariant_kernels_equal_serial_fold(name):
    definitions = _method_kernel_definitions()
    definition = definitions[name]
    runner = AggregateRunner(definition)
    rng = random.Random(zlib.crc32(name.encode()))  # stable across processes
    rows = _method_kernel_rows(name, rng)
    serial = definition.finalize(runner.fold(list(rows)))
    for trial in range(8):
        segments = _random_contiguous_split(rows, rng, rng.choice([2, 3, 5, 9]))
        merged = runner.run_segmented(segments)
        if name == "fmsketch":
            assert (merged.bitmaps == serial.bitmaps).all(), trial
        elif name == "cmsketch":
            assert (merged.counters == serial.counters).all(), trial
            assert merged.total == serial.total, trial
        else:
            np.testing.assert_allclose(merged, serial, rtol=1e-12, err_msg=str(trial))


@pytest.mark.parametrize("name", sorted(_method_kernel_definitions()))
def test_method_kernel_merge_is_associative(name):
    definitions = _method_kernel_definitions()
    definition = definitions[name]
    runner = AggregateRunner(definition)
    rng = random.Random(zlib.crc32(b"assoc:" + name.encode()))  # stable across processes
    rows = _method_kernel_rows(name, rng, size=30)
    a, b, c = (runner.fold(chunk) for chunk in (rows[:9], rows[9:21], rows[21:]))
    import copy

    left = definition.merge(definition.merge(copy.deepcopy(a), copy.deepcopy(b)), copy.deepcopy(c))
    right = definition.merge(copy.deepcopy(a), definition.merge(copy.deepcopy(b), copy.deepcopy(c)))
    left, right = definition.finalize(left), definition.finalize(right)
    if name == "igd_epoch":
        np.testing.assert_allclose(left["model"], right["model"], rtol=1e-9)
        assert left["n"] == right["n"]
        assert left["loss"] == pytest.approx(right["loss"], rel=1e-9)
    elif name == "fmsketch":
        assert (left.bitmaps == right.bitmaps).all()
    elif name == "cmsketch":
        assert (left.counters == right.counters).all() and left.total == right.total
    else:
        assert left == right


def test_reservoir_kernel_exact_when_sample_covers_stream():
    """With the reservoir at least as large as the stream, any segmentation
    returns exactly the sorted input values."""
    from repro.engine.aggregates import AggregateDefinition
    from repro.methods.quantiles import ReservoirQuantileKernel

    kernel = ReservoirQuantileKernel(reservoir_size=64, seed=1)
    definition = AggregateDefinition(
        "quantile_reservoir",
        kernel.transition,
        merge=kernel.merge,
        final=kernel.final,
        initial_state=None,
        strict=True,
    )
    runner = AggregateRunner(definition)
    rng = random.Random(11)
    rows = [(rng.uniform(-10, 10),) for _ in range(40)]
    expected = sorted(value for (value,) in rows)
    assert runner.run_segmented([rows[:13], rows[13:20], [], rows[20:]])["values"] == expected
    assert definition.finalize(runner.fold(rows))["values"] == expected
