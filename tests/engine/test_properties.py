"""Property-based tests (hypothesis) for engine invariants.

The invariants checked here are the ones the paper's execution model depends
on: the merge path of a user-defined aggregate must give the same answer as a
single-stream fold regardless of how rows are partitioned across segments, the
SQL expression evaluator must agree with Python arithmetic, and table storage
must never lose or duplicate rows under redistribution.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Database
from repro.engine.aggregates import AggregateRunner, builtin_aggregates
from repro.engine.table import Table
from repro.engine.schema import Schema


def builtin(name):
    for definition in builtin_aggregates():
        if definition.name == name:
            return definition
    raise AssertionError(name)


finite_doubles = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestAggregateMergeProperties:
    @given(
        values=st.lists(finite_doubles, min_size=0, max_size=60),
        num_segments=st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=60, deadline=None)
    def test_sum_partition_invariance(self, values, num_segments):
        rows = [(v,) for v in values]
        segments = [rows[i::num_segments] for i in range(num_segments)]
        runner = AggregateRunner(builtin("sum"))
        serial = runner.run(rows)
        parallel = runner.run_segmented(segments)
        if serial is None:
            assert parallel is None
        else:
            assert parallel == pytest.approx(serial, rel=1e-9, abs=1e-9)

    @given(
        values=st.lists(finite_doubles, min_size=2, max_size=60),
        num_segments=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_variance_partition_invariance(self, values, num_segments):
        rows = [(v,) for v in values]
        segments = [rows[i::num_segments] for i in range(num_segments)]
        runner = AggregateRunner(builtin("var_samp"))
        serial = runner.run(rows)
        parallel = runner.run_segmented(segments)
        assert parallel == pytest.approx(serial, rel=1e-6, abs=1e-6)
        assert serial == pytest.approx(float(np.var(values, ddof=1)), rel=1e-6, abs=1e-6)

    @given(values=st.lists(finite_doubles, min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_min_max_agree_with_python(self, values):
        rows = [(v,) for v in values]
        assert AggregateRunner(builtin("min")).run(rows) == min(values)
        assert AggregateRunner(builtin("max")).run(rows) == max(values)

    @given(
        values=st.lists(st.integers(min_value=-100, max_value=100), min_size=0, max_size=50),
        num_segments=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_count_partition_invariance(self, values, num_segments):
        rows = [(v,) for v in values]
        segments = [rows[i::num_segments] for i in range(num_segments)]
        runner = AggregateRunner(builtin("count"))
        assert runner.run_segmented(segments) == len(values)


class TestExpressionProperties:
    @given(a=finite_doubles, b=finite_doubles)
    @settings(max_examples=60, deadline=None)
    def test_arithmetic_matches_python(self, a, b):
        db = Database()
        result = db.query_scalar("SELECT %(a)s + %(b)s * 2 - %(a)s / 4", {"a": a, "b": b})
        assert result == pytest.approx(a + b * 2 - a / 4, rel=1e-12, abs=1e-9)

    @given(a=finite_doubles, b=finite_doubles)
    @settings(max_examples=60, deadline=None)
    def test_comparison_matches_python(self, a, b):
        db = Database()
        assert db.query_scalar("SELECT %(a)s < %(b)s", {"a": a, "b": b}) == (a < b)

    @given(values=st.lists(finite_doubles, min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_array_subscript_round_trip(self, values):
        db = Database()
        for index in (1, len(values)):
            result = db.query_scalar(
                "SELECT (%(arr)s)[%(i)s]", {"arr": np.asarray(values), "i": index}
            )
            assert result == pytest.approx(values[index - 1])


class TestTableProperties:
    @given(
        num_rows=st.integers(min_value=0, max_value=120),
        initial_segments=st.integers(min_value=1, max_value=8),
        new_segments=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_redistribution_preserves_multiset(self, num_rows, initial_segments, new_segments):
        schema = Schema.from_pairs([("id", "integer"), ("v", "double precision")])
        table = Table("t", schema, num_segments=initial_segments)
        table.insert_many([(i, float(i) * 0.5) for i in range(num_rows)])
        table.redistribute(new_segments)
        assert len(table) == num_rows
        assert sorted(row[0] for row in table.rows()) == list(range(num_rows))
        assert sum(table.segment_sizes()) == num_rows

    @given(num_rows=st.integers(min_value=1, max_value=100), num_segments=st.integers(min_value=1, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_sql_count_matches_rows_loaded(self, num_rows, num_segments):
        db = Database(num_segments=num_segments)
        db.create_table("t", [("v", "integer")])
        db.load_rows("t", [(i,) for i in range(num_rows)])
        assert db.query_scalar("SELECT count(*) FROM t") == num_rows


class TestGroupByProperties:
    @given(
        values=st.lists(st.tuples(st.integers(min_value=0, max_value=4), finite_doubles),
                        min_size=1, max_size=80),
        num_segments=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_group_sums_match_python(self, values, num_segments):
        db = Database(num_segments=num_segments)
        db.create_table("t", [("g", "integer"), ("v", "double precision")])
        db.load_rows("t", values)
        rows = db.query_dicts("SELECT g, sum(v) AS total FROM t GROUP BY g")
        expected = {}
        for g, v in values:
            expected[g] = expected.get(g, 0.0) + v
        assert len(rows) == len(expected)
        for row in rows:
            assert row["total"] == pytest.approx(expected[row["g"]], rel=1e-9, abs=1e-9)
