"""Unit tests for expression evaluation (SQL three-valued logic, arrays, casts)."""

import numpy as np
import pytest

from repro.engine.expressions import RowContext
from repro.engine.functions import builtin_functions
from repro.engine.parser import parse_expression
from repro.errors import ExecutionError, FunctionError


def make_context(values=None, parameters=None):
    functions = {definition.name.lower(): definition for definition in builtin_functions()}
    return RowContext({k.lower(): v for k, v in (values or {}).items()}, functions, parameters)


def evaluate(sql, values=None, parameters=None):
    return parse_expression(sql).evaluate(make_context(values, parameters))


class TestArithmetic:
    def test_basic_arithmetic(self):
        assert evaluate("1 + 2 * 3") == 7
        assert evaluate("2 ^ 10") == 1024
        assert evaluate("7 % 3") == 1
        assert evaluate("-x", {"x": 5}) == -5

    def test_integer_division_truncates(self):
        assert evaluate("7 / 2") == 3
        assert evaluate("7.0 / 2") == 3.5

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError):
            evaluate("1 / 0")

    def test_null_propagation(self):
        assert evaluate("1 + x", {"x": None}) is None
        assert evaluate("x * 2", {"x": None}) is None

    def test_array_arithmetic(self):
        result = evaluate("x + y", {"x": np.array([1.0, 2.0]), "y": np.array([3.0, 4.0])})
        np.testing.assert_array_equal(result, [4.0, 6.0])


class TestComparisonsAndLogic:
    def test_comparisons(self):
        assert evaluate("2 > 1") is True
        assert evaluate("2 <= 1") is False
        assert evaluate("'abc' = 'abc'") is True
        assert evaluate("1 <> 2") is True

    def test_three_valued_logic(self):
        assert evaluate("x > 1", {"x": None}) is None
        assert evaluate("x > 1 AND TRUE", {"x": None}) is None
        assert evaluate("x > 1 AND FALSE", {"x": None}) is False
        assert evaluate("x > 1 OR TRUE", {"x": None}) is True
        assert evaluate("NOT x", {"x": None}) is None

    def test_between_and_in(self):
        assert evaluate("5 BETWEEN 1 AND 10") is True
        assert evaluate("x NOT BETWEEN 1 AND 10", {"x": 50}) is True
        assert evaluate("3 IN (1, 2, 3)") is True
        assert evaluate("4 NOT IN (1, 2, 3)") is True
        assert evaluate("x IN (1, 2)", {"x": None}) is None

    def test_is_null(self):
        assert evaluate("x IS NULL", {"x": None}) is True
        assert evaluate("x IS NOT NULL", {"x": 1}) is True

    def test_like(self):
        assert evaluate("'hello' LIKE 'he%'") is True
        assert evaluate("'hello' LIKE 'h_llo'") is True
        assert evaluate("'hello' LIKE 'x%'") is False

    def test_array_equality(self):
        assert evaluate("x = y", {"x": np.array([1.0]), "y": np.array([1.0])}) is True


class TestCaseCastArrays:
    def test_case_expression(self):
        assert evaluate("CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END", {"x": 3}) == "pos"
        assert evaluate("CASE WHEN x > 0 THEN 'pos' END", {"x": -1}) is None

    def test_cast(self):
        assert evaluate("'42'::integer") == 42
        assert evaluate("CAST(1 AS double precision)") == 1.0
        assert evaluate("1 = 1") is True

    def test_array_literal_and_subscript(self):
        result = evaluate("ARRAY[1, 2, 3]")
        np.testing.assert_array_equal(result, [1.0, 2.0, 3.0])
        assert evaluate("x[1]", {"x": np.array([10.0, 20.0])}) == 10.0
        # PostgreSQL 1-based indexing; out-of-range yields NULL.
        assert evaluate("x[5]", {"x": np.array([10.0, 20.0])}) is None

    def test_string_concat_operator(self):
        assert evaluate("'a' || 'b'") == "ab"

    def test_text_array_literal(self):
        assert evaluate("ARRAY['a', 'b']") == ["a", "b"]


class TestFunctionsAndParameters:
    def test_builtin_scalar_functions(self):
        assert evaluate("abs(-3)") == 3
        assert evaluate("sqrt(16)") == 4.0
        assert evaluate("lower('ABC')") == "abc"
        assert evaluate("length('abcd')") == 4
        assert evaluate("coalesce(NULL, NULL, 7)") == 7
        assert evaluate("greatest(1, 5, 3)") == 5

    def test_strict_function_returns_null(self):
        assert evaluate("sqrt(x)", {"x": None}) is None

    def test_unknown_function_raises(self):
        with pytest.raises(FunctionError):
            evaluate("no_such_function(1)")

    def test_parameters(self):
        assert evaluate("%(a)s + 1", parameters={"a": 41}) == 42

    def test_unbound_parameter_raises(self):
        with pytest.raises(ExecutionError):
            evaluate("%(missing)s")

    def test_array_functions(self):
        assert evaluate("array_dot(x, x)", {"x": np.array([3.0, 4.0])}) == 25.0
        assert evaluate("array_upper(x, 1)", {"x": np.array([1.0, 2.0, 3.0])}) == 3

    def test_column_lookup_ambiguity(self):
        context = make_context({"a.v": 1, "b.v": 2})
        with pytest.raises(ExecutionError):
            parse_expression("v").evaluate(context)
        assert parse_expression("a.v").evaluate(context) == 1

    def test_missing_column_raises(self):
        with pytest.raises(ExecutionError):
            evaluate("missing_column")


class TestTreeUtilities:
    def test_walk_and_column_references(self):
        expression = parse_expression("a + b * coalesce(c, 1)")
        names = {ref.name for ref in expression.column_references()}
        assert names == {"a", "b", "c"}

    def test_contains_aggregate(self):
        expression = parse_expression("1 + sum(x)")
        assert expression.contains_aggregate(lambda name: name == "sum")
        assert not expression.contains_aggregate(lambda name: name == "avg")
