"""Join-semantics corpus: hash-join vs nested-loop parity across all tiers.

The hash-join execution layer (``repro.engine.join``) must be
observationally identical to the legacy interpreted nested loop — row
values, row order, which queries raise — for every join shape the planner
accepts, and must fall back cleanly for the shapes it does not.  Four
databases with identical contents run the corpus:

* ``hash`` — compiled execution, hash joins on (the default),
* ``nested`` — compiled execution, ``hash_joins=False`` (the baseline),
* ``interpreted`` — ``compiled_execution=False`` (hash joins require the
  compiler, so this is the fully interpreted tier),
* ``parallel`` — hash joins with a forced worker pool
  (``min_dispatch_rows = 0``), so build/probe really crosses the process
  boundary for the co-located and broadcast shapes.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.engine.join import split_conjuncts, conjoin
from repro.engine.parser import parse_statement
from repro.errors import ExecutionError

from test_compiled_parity import _assert_results_equal


def _load_join_tables(db: Database) -> Database:
    db.create_table(
        "emp",
        [
            ("id", "integer"),
            ("dept_id", "integer"),
            ("name", "text"),
            ("salary", "double precision"),
        ],
        distributed_by="id",
    )
    rows = []
    for i in range(1, 41):
        dept = None if i % 13 == 0 else i % 5  # NULL join keys included
        salary = None if i % 11 == 0 else 1000.0 + 10 * i
        rows.append((i, dept, f"emp_{i}", salary))
    db.load_rows("emp", rows)

    db.create_table(
        "dept",
        [("dept_id", "integer"), ("dept_name", "text"), ("budget", "double precision")],
        distributed_by="dept_id",
    )
    # dept 4 missing (unmatched emps), dept 7 unmatched on the other side,
    # dept 2 duplicated (multiplicity), one NULL key.
    db.load_rows(
        "dept",
        [
            (0, "eng", 100.0),
            (1, "ops", 200.0),
            (2, "sales", 300.0),
            (2, "sales_emea", 310.0),
            (3, "hr", None),
            (7, "empty", 50.0),
            (None, "lost", 10.0),
        ],
    )

    # Viterbi-shaped trio: factors × paths × transitions.
    labels = 6
    db.create_table(
        "factors",
        [("position", "integer"), ("label", "integer"), ("emission", "double precision")],
    )
    db.load_rows(
        "factors",
        [(p, l, float(p + l) / 7.0) for p in range(3) for l in range(labels)],
    )
    db.create_table(
        "paths",
        [("position", "integer"), ("label", "integer"), ("score", "double precision")],
    )
    db.load_rows("paths", [(0, l, float(l) * 0.3) for l in range(labels)])
    db.create_table(
        "transitions",
        [("prev_label", "integer"), ("label", "integer"), ("weight", "double precision")],
    )
    db.load_rows(
        "transitions",
        [(a, b, float(a * labels + b) / 11.0) for a in range(labels) for b in range(labels)],
    )
    return db


def _make_db(**kwargs) -> Database:
    return _load_join_tables(Database(num_segments=4, **kwargs))


@pytest.fixture(scope="module")
def tiers():
    hash_db = _make_db()
    nested_db = _make_db(hash_joins=False)
    interpreted_db = _make_db(compiled_execution=False)
    parallel_db = _make_db(parallel=2)
    parallel_db.worker_pool.min_dispatch_rows = 0
    yield {
        "hash": hash_db,
        "nested": nested_db,
        "interpreted": interpreted_db,
        "parallel": parallel_db,
    }
    parallel_db.close()


CORPUS = [
    # Plain inner equi-joins, qualified references.
    "SELECT e.id, d.dept_name FROM emp e JOIN dept d ON e.dept_id = d.dept_id ORDER BY e.id, d.dept_name",
    # No ORDER BY: raw emission order must match the nested loop exactly.
    "SELECT e.id, d.dept_name FROM emp e JOIN dept d ON e.dept_id = d.dept_id",
    "SELECT count(*) FROM emp e JOIN dept d ON e.dept_id = d.dept_id",
    # Left join: NULL extension, including NULL-key emp rows.
    "SELECT e.id, d.dept_name FROM emp e LEFT JOIN dept d ON e.dept_id = d.dept_id",
    "SELECT count(*) FROM emp e LEFT JOIN dept d ON e.dept_id = d.dept_id",
    # Single-side conjuncts in ON (pushdown for inner, build-side-only for left).
    "SELECT e.id, d.dept_name FROM emp e JOIN dept d ON e.dept_id = d.dept_id AND e.salary > 1100 AND d.budget > 150",
    "SELECT e.id, d.dept_name FROM emp e LEFT JOIN dept d ON e.dept_id = d.dept_id AND d.budget > 150",
    "SELECT e.id, d.dept_name FROM emp e LEFT JOIN dept d ON e.dept_id = d.dept_id AND e.salary > 1100",
    # Residual cross-side predicate next to the equi key.
    "SELECT e.id, d.dept_name FROM emp e JOIN dept d ON e.dept_id = d.dept_id AND e.salary > d.budget * 4",
    "SELECT e.id, d.dept_name FROM emp e LEFT JOIN dept d ON e.dept_id = d.dept_id AND e.salary > d.budget * 4",
    # Expression keys.
    "SELECT e.id, d.dept_name FROM emp e JOIN dept d ON e.id % 5 = d.dept_id",
    "SELECT a.id, b.id FROM emp a JOIN emp b ON a.id = b.id - 1 WHERE a.id < 6 ORDER BY a.id",
    # Non-equi condition: nested-loop fallback on every tier.
    "SELECT count(*) FROM emp e JOIN dept d ON e.dept_id < d.dept_id",
    "SELECT e.id, d.dept_id FROM emp e LEFT JOIN dept d ON e.dept_id < d.dept_id AND e.id < 4",
    # Cross joins.
    "SELECT count(*) FROM emp CROSS JOIN dept",
    "SELECT count(*) FROM emp, dept",
    # Implicit multi-FROM + WHERE: pushdown must match product-then-filter.
    "SELECT e.id, d.dept_name FROM emp e, dept d WHERE e.dept_id = d.dept_id",
    "SELECT e.id, d.dept_name FROM emp e, dept d WHERE e.dept_id = d.dept_id AND e.salary > 1100 AND d.budget > 150",
    "SELECT e.id, d.dept_name FROM emp e, dept d WHERE e.dept_id = d.dept_id AND e.salary > d.budget * 4",
    # ... including one with no equality at all (prefilters only).
    "SELECT count(*) FROM emp e, dept d WHERE e.salary > 1200 AND d.budget > 100",
    # ... and aggregation over the join.
    "SELECT d.dept_name, count(*), avg(e.salary) FROM emp e, dept d "
    "WHERE e.dept_id = d.dept_id GROUP BY d.dept_name ORDER BY d.dept_name",
    # The Viterbi DP-step shape: three-way join, two equality edges, GROUP BY.
    "SELECT f.position, f.label, max(p.score + t.weight + f.emission) "
    "FROM factors f, paths p, transitions t "
    "WHERE f.position = 1 AND p.position = 0 "
    "AND t.prev_label = p.label AND t.label = f.label "
    "GROUP BY f.position, f.label ORDER BY f.label",
    # Same shape without aggregation (raw emission order).
    "SELECT f.label, p.label, t.weight FROM factors f, paths p, transitions t "
    "WHERE f.position = 1 AND p.position = 0 "
    "AND t.prev_label = p.label AND t.label = f.label",
    # ORDER BY + LIMIT over a join (the top-k short-circuit).
    "SELECT e.id, e.salary FROM emp e JOIN dept d ON e.dept_id = d.dept_id "
    "ORDER BY e.salary DESC LIMIT 3",
    "SELECT e.id, e.salary FROM emp e ORDER BY e.salary DESC NULLS LAST LIMIT 1",
    "SELECT e.id, e.salary FROM emp e ORDER BY e.salary ASC NULLS FIRST, e.id DESC LIMIT 5",
    "SELECT e.id FROM emp e ORDER BY e.dept_id, e.salary DESC LIMIT 4 OFFSET 2",
    # Joins against subqueries and table functions.
    "SELECT s.dept_id, d.dept_name FROM (SELECT dept_id, count(*) AS n FROM emp GROUP BY dept_id) s "
    "JOIN dept d ON s.dept_id = d.dept_id ORDER BY s.dept_id, d.dept_name",
    "SELECT g.i, e.name FROM generate_series(1, 5) g(i) JOIN emp e ON g.i = e.id ORDER BY g.i",
    # Bare (unambiguous) column names across sides.
    "SELECT name, dept_name FROM emp JOIN dept ON emp.dept_id = dept.dept_id ORDER BY name, dept_name",
]


@pytest.mark.parametrize("query", CORPUS)
@pytest.mark.parametrize("tier", ["hash", "interpreted", "parallel"])
def test_join_parity_vs_nested_loop(tiers, tier, query):
    """Every tier must be byte-identical to the nested-loop baseline."""
    _assert_results_equal(tiers[tier].execute(query), tiers["nested"].execute(query), query)


class TestStrategySelection:
    def test_equi_join_uses_hash(self, tiers):
        db = tiers["hash"]
        db.execute("SELECT count(*) FROM emp e JOIN dept d ON e.dept_id = d.dept_id")
        assert db.last_stats.join_strategy == "hash"
        assert db.last_stats.join_rows_emitted > 0

    def test_non_equi_falls_back_to_nested_loop(self, tiers):
        db = tiers["hash"]
        db.execute("SELECT count(*) FROM emp e JOIN dept d ON e.dept_id < d.dept_id")
        assert db.last_stats.join_strategy == "nested_loop"

    def test_cross_join_strategy(self, tiers):
        db = tiers["hash"]
        db.execute("SELECT count(*) FROM emp CROSS JOIN dept")
        assert db.last_stats.join_strategy == "cross"

    def test_multi_from_pushdown_strategy(self, tiers):
        db = tiers["hash"]
        db.execute(
            "SELECT count(*) FROM factors f, paths p, transitions t "
            "WHERE f.position = 1 AND p.position = 0 "
            "AND t.prev_label = p.label AND t.label = f.label"
        )
        # Step 1 (factors × paths) has no usable edge → cross; step 2 joins
        # transitions on both accumulated keys → hash.
        assert db.last_stats.join_strategy == "cross,hash"

    def test_hash_joins_flag_disables_planning(self, tiers):
        db = tiers["nested"]
        db.execute("SELECT count(*) FROM emp e JOIN dept d ON e.dept_id = d.dept_id")
        assert db.last_stats.join_strategy == "nested_loop"

    def test_volatile_function_disables_pushdown(self, tiers):
        db = tiers["hash"]
        db.execute(
            "SELECT count(*) FROM emp e JOIN dept d "
            "ON e.dept_id = d.dept_id AND random() >= 0.0"
        )
        assert db.last_stats.join_strategy == "nested_loop"

    def test_colocated_dispatch_on_distribution_keys(self, tiers):
        db = tiers["parallel"]
        db.execute("SELECT count(*) FROM emp e JOIN dept d ON e.dept_id = d.dept_id")
        # emp is distributed by id, dept by dept_id: the key matches only the
        # build side, so this must be a broadcast, not a co-located join.
        assert db.last_stats.join_strategy == "hash_broadcast"
        db.execute("SELECT count(*) FROM emp a JOIN emp b ON a.id = b.id")
        assert db.last_stats.join_strategy == "hash_colocated"
        assert db.last_stats.join_parallel_wall_seconds > 0.0

    def test_serial_pool_free_database_never_reports_parallel_join(self, tiers):
        db = tiers["hash"]
        db.execute("SELECT count(*) FROM emp e JOIN dept d ON e.dept_id = d.dept_id")
        assert db.last_stats.join_parallel_wall_seconds is None


class TestScanAccounting:
    def test_single_table_scan_unchanged(self, tiers):
        db = tiers["hash"]
        db.execute("SELECT count(*) FROM emp")
        assert db.last_stats.rows_scanned == 40
        assert db.last_stats.rows_scanned_per_source == [40]

    def test_join_counts_base_rows_not_product(self, tiers):
        for tier in ("hash", "nested", "interpreted"):
            db = tiers[tier]
            db.execute("SELECT count(*) FROM emp CROSS JOIN dept")
            assert db.last_stats.rows_scanned == 47, tier  # 40 + 7, not 280
            assert db.last_stats.rows_scanned_per_source == [40, 7], tier

    def test_three_way_join_sources(self, tiers):
        db = tiers["hash"]
        db.execute(
            "SELECT count(*) FROM factors f, paths p, transitions t "
            "WHERE f.position = 1 AND p.position = 0 "
            "AND t.prev_label = p.label AND t.label = f.label"
        )
        assert db.last_stats.rows_scanned_per_source == [18, 6, 36]
        assert db.last_stats.rows_scanned == 60


class TestErrorParity:
    @pytest.mark.parametrize(
        "query",
        [
            # Ambiguous bare column across sides.
            "SELECT 1 FROM emp a, emp b WHERE id = 3",
            # Unknown column in a join condition.
            "SELECT 1 FROM emp e JOIN dept d ON e.nope = d.dept_id",
        ],
    )
    def test_errors_raise_on_every_tier(self, tiers, query):
        for tier in ("hash", "nested", "interpreted", "parallel"):
            with pytest.raises(ExecutionError):
                tiers[tier].execute(query)


class TestConjunctHelpers:
    def test_split_and_conjoin_roundtrip(self):
        statement = parse_statement(
            "SELECT 1 FROM emp WHERE id > 1 AND salary > 2 AND (name = 'x' OR id = 5)"
        )
        conjuncts = split_conjuncts(statement.where)
        assert len(conjuncts) == 3
        rebuilt = conjoin(conjuncts)
        assert split_conjuncts(rebuilt) == conjuncts
        assert conjoin([]) is None


class TestDMLCompiledPath:
    @pytest.fixture()
    def dml_pair(self):
        pair = []
        for compiled in (True, False):
            db = Database(num_segments=4, compiled_execution=compiled)
            db.create_table(
                "u", [("id", "integer"), ("v", "double precision")], distributed_by="id"
            )
            db.load_rows("u", [(i, None if i % 7 == 0 else float(i)) for i in range(1, 31)])
            pair.append(db)
        return pair

    def test_update_parity(self, dml_pair):
        counts = [
            db.execute("UPDATE u SET v = v * 2 WHERE v > 10 AND id < 25").rowcount
            for db in dml_pair
        ]
        assert counts[0] == counts[1] > 0
        rows = [db.execute("SELECT id, v FROM u ORDER BY id").rows for db in dml_pair]
        assert rows[0] == rows[1]

    def test_update_rowcount_and_stats(self, dml_pair):
        db = dml_pair[0]
        result = db.execute("UPDATE u SET v = 0.0 WHERE id <= 3")
        assert result.rowcount == 3
        assert result.stats.rows_scanned == 30

    def test_delete_parity(self, dml_pair):
        counts = []
        for db in dml_pair:
            result = db.execute("DELETE FROM u WHERE v IS NULL OR v < 5")
            counts.append(result.rowcount)
        assert counts[0] == counts[1] > 0
        rows = [db.execute("SELECT id FROM u ORDER BY id").rows for db in dml_pair]
        assert rows[0] == rows[1]

    def test_delete_preserves_segment_placement(self, dml_pair):
        db = dml_pair[0]
        table = db.table("u")
        before = table.segment_sizes()
        db.execute("DELETE FROM u WHERE id % 2 = 0")
        after = table.segment_sizes()
        assert sum(before) - sum(after) == 15
        assert all(a <= b for a, b in zip(after, before))


class TestTopKShortCircuit:
    def test_limit_matches_full_sort(self, tiers):
        full = tiers["hash"].execute(
            "SELECT id, salary FROM emp ORDER BY salary DESC NULLS LAST, id"
        ).rows
        for k in (1, 3, 10):
            top = tiers["hash"].execute(
                f"SELECT id, salary FROM emp ORDER BY salary DESC NULLS LAST, id LIMIT {k}"
            ).rows
            assert top == full[:k]

    def test_distinct_not_short_circuited(self, tiers):
        rows = tiers["hash"].execute(
            "SELECT DISTINCT dept_id FROM emp ORDER BY dept_id NULLS LAST LIMIT 2"
        ).rows
        assert rows == [(0,), (1,)]

    def test_grouped_top_k(self, tiers):
        query = (
            "SELECT dept_id, count(*) AS n FROM emp GROUP BY dept_id "
            "ORDER BY n DESC, dept_id NULLS LAST LIMIT 2"
        )
        assert tiers["hash"].execute(query).rows == tiers["nested"].execute(query).rows

    def test_nan_keys_fall_back_to_full_sort(self):
        """NaN sort keys must not change LIMIT results vs the unlimited sort."""
        db = Database(num_segments=1)
        db.create_table("nn", [("id", "integer"), ("v", "double precision")])
        db.load_rows("nn", [(1, float("nan")), (2, 1.0), (3, 2.0), (4, float("nan"))])
        full = db.execute("SELECT id FROM nn ORDER BY v").rows
        for k in (1, 2, 3):
            assert db.execute(f"SELECT id FROM nn ORDER BY v LIMIT {k}").rows == full[:k]
