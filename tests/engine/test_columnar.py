"""Columnar storage vs row-tuple storage parity.

Typed packed columns (:mod:`repro.engine.columnar`) are the default storage;
``Database(columnar_storage=False)`` keeps the original row-tuple lists.  The
two representations must be observationally identical — byte-identical query
results, identical DML effects, identical errors — with the columnar engine
additionally running supported WHERE clauses as selection bitmaps over the
packed columns (``ExecutionStats.where_vectorized``).  This suite runs a
query corpus and a mirrored DML script through both storages and asserts
exact equality, plus unit tests for the storage layer itself: the None vs
NaN round-trip through the null bitmap, int-overflow demotion to object
columns (and the resulting vectorization fallback), per-segment cache
invalidation, and the rows-touched accounting of bitmap scans.
"""

from __future__ import annotations

import math
import random

import pytest

from repro import Database


def _seed_rows(count: int = 120, seed: int = 7):
    rng = random.Random(seed)
    rows = []
    for i in range(1, count + 1):
        grp = "abc"[i % 3]
        a = None if i % 7 == 0 else rng.uniform(-50.0, 50.0)
        b = None if i % 11 == 0 else float(i % 5) - 2.0
        n = None if i % 13 == 0 else rng.randrange(-1000, 1000)
        s = None if i % 17 == 0 else f"name_{i % 4}"
        rows.append((i, grp, a, b, n, s))
    return rows


def _make_db(columnar: bool, rows) -> Database:
    db = Database(num_segments=4, columnar_storage=columnar)
    db.create_table(
        "t",
        [
            ("id", "integer"),
            ("grp", "text"),
            ("a", "double precision"),
            ("b", "double precision"),
            ("n", "integer"),
            ("s", "text"),
        ],
        distributed_by="id",
    )
    db.load_rows("t", rows)
    return db


def _make_pair(rows):
    """Two databases with identical contents: columnar on, columnar off."""
    return _make_db(True, rows), _make_db(False, rows)


@pytest.fixture(scope="module")
def db_pair():
    return _make_pair(_seed_rows())


def _values_identical(left, right) -> bool:
    """Byte-identity: same types, same values; NaN equals NaN only."""
    if type(left) is not type(right):
        return False
    if isinstance(left, float):
        if math.isnan(left) or math.isnan(right):
            return math.isnan(left) and math.isnan(right)
        return left == right
    if isinstance(left, (list, tuple)):
        return len(left) == len(right) and all(
            _values_identical(l, r) for l, r in zip(left, right)
        )
    return left == right


def _assert_results_identical(columnar, rowwise, label):
    assert columnar.columns == rowwise.columns, label
    assert len(columnar.rows) == len(rowwise.rows), label
    for row_c, row_r in zip(columnar.rows, rowwise.rows):
        assert _values_identical(tuple(row_c), tuple(row_r)), (
            f"{label}: {row_c!r} != {row_r!r}"
        )


# Vectorizable WHERE shapes, fallback shapes, aggregates, GROUP BY, joins —
# every query must agree exactly regardless of which path each storage takes.
CORPUS = [
    "SELECT id, a, b FROM t WHERE a < 0 ORDER BY id",
    "SELECT id FROM t WHERE a BETWEEN -10 AND 25 ORDER BY id",
    "SELECT id FROM t WHERE a NOT BETWEEN -10 AND 25 ORDER BY id",
    "SELECT id FROM t WHERE n > 100 AND a <= 0 ORDER BY id",
    "SELECT id FROM t WHERE a IS NULL ORDER BY id",
    "SELECT id FROM t WHERE a IS NOT NULL AND (b > 0 OR n = 3) ORDER BY id",
    "SELECT id FROM t WHERE NOT (a > 0) ORDER BY id",
    "SELECT id FROM t WHERE a - b > 1.5 ORDER BY id",
    "SELECT id FROM t WHERE a * 2 < b ORDER BY id",
    "SELECT id FROM t WHERE -a > 10 ORDER BY id",
    # Text/LIKE/IN now vectorize in code space over dictionary columns;
    # functions remain fallback parity.
    "SELECT id FROM t WHERE grp = 'a' ORDER BY id",
    "SELECT id FROM t WHERE s LIKE 'name_1%' ORDER BY id",
    "SELECT id FROM t WHERE id IN (3, 5, 8) ORDER BY id",
    "SELECT id FROM t WHERE abs(b) > 1 ORDER BY id",
    # Aggregation over bitmap-filtered scans (late materialization path).
    "SELECT count(*) FROM t WHERE a < 0",
    "SELECT count(*), sum(a), avg(a), min(b), max(b) FROM t WHERE a > -20",
    "SELECT sum(n) FROM t WHERE n BETWEEN -500 AND 500",
    "SELECT var_samp(a), stddev(a) FROM t WHERE b IS NOT NULL",
    "SELECT grp, count(*), sum(a) FROM t WHERE a < 10 GROUP BY grp ORDER BY grp",
    "SELECT grp, count(*) FROM t GROUP BY grp HAVING count(*) > 30 ORDER BY grp",
    "SELECT count(DISTINCT grp) FROM t WHERE id > 10",
    "SELECT array_agg(grp) FROM t WHERE id <= 6",
    # Projection / ordering / joins on top of either storage.
    "SELECT id, a + b, grp || '-' || s FROM t ORDER BY id",
    "SELECT id FROM t ORDER BY a DESC, id LIMIT 9",
    "SELECT t1.id, t2.id FROM t t1 JOIN t t2 ON t1.id = t2.id - 1 WHERE t1.a < 0 ORDER BY t1.id",
    "SELECT sub.g, sub.c FROM (SELECT grp AS g, count(*) AS c FROM t WHERE b > -2 GROUP BY grp) sub ORDER BY sub.g",
]


@pytest.mark.parametrize("query", CORPUS)
def test_columnar_matches_row_storage(db_pair, query):
    columnar_db, row_db = db_pair
    _assert_results_identical(
        columnar_db.execute(query), row_db.execute(query), query
    )


DML_SCRIPT = [
    "UPDATE t SET a = a + 1.0 WHERE a < 0",
    "UPDATE t SET b = NULL WHERE n > 800",
    "DELETE FROM t WHERE a BETWEEN 30 AND 40",
    "DELETE FROM t WHERE s LIKE 'name_2%'",
    "INSERT INTO t VALUES (9001, 'z', 1.5, -0.5, 42, 'tail')",
    "UPDATE t SET n = n * 2 WHERE id = 9001",
    "DELETE FROM t WHERE id % 9 = 0",
]


def test_dml_parity_step_by_step():
    columnar_db, row_db = _make_pair(_seed_rows(seed=21))
    probe = "SELECT * FROM t ORDER BY id"
    for statement in DML_SCRIPT:
        result_c = columnar_db.execute(statement)
        result_r = row_db.execute(statement)
        assert result_c.rowcount == result_r.rowcount, statement
        _assert_results_identical(
            columnar_db.execute(probe), row_db.execute(probe), statement
        )


@pytest.mark.parametrize("rows", [[], [(1, "a", 2.5, None, 7, "one")]])
def test_empty_and_single_row_tables(rows):
    columnar_db, row_db = _make_pair(rows)
    for query in [
        "SELECT * FROM t ORDER BY id",
        "SELECT count(*), sum(a) FROM t WHERE a > 0",
        "SELECT id FROM t WHERE a BETWEEN 0 AND 10",
    ]:
        _assert_results_identical(
            columnar_db.execute(query), row_db.execute(query), query
        )
    assert columnar_db.execute("DELETE FROM t WHERE a < 100").rowcount == (
        row_db.execute("DELETE FROM t WHERE a < 100").rowcount
    )


def test_null_heavy_table_parity():
    rows = [(i, None, None, None, None, None) for i in range(1, 41)]
    columnar_db, row_db = _make_pair(rows)
    for query in [
        "SELECT * FROM t ORDER BY id",
        "SELECT count(a), count(*) FROM t",
        "SELECT id FROM t WHERE a IS NULL ORDER BY id",
        "SELECT id FROM t WHERE a > 0 ORDER BY id",
        "SELECT sum(a), avg(b) FROM t WHERE b IS NOT NULL",
    ]:
        _assert_results_identical(
            columnar_db.execute(query), row_db.execute(query), query
        )


# ---------------------------------------------------------------------------
# Storage-layer behavior
# ---------------------------------------------------------------------------


def test_none_vs_nan_round_trip():
    """The null bitmap keeps stored None distinct from a genuine float NaN."""
    db = Database(num_segments=2)
    db.create_table("f", [("id", "integer"), ("x", "double precision")])
    db.load_rows("f", [(1, None), (2, float("nan")), (3, 1.25)])
    by_id = {row[0]: row[1] for row in db.execute("SELECT id, x FROM f").rows}
    assert by_id[1] is None
    assert isinstance(by_id[2], float) and math.isnan(by_id[2])
    assert by_id[3] == 1.25
    # Both None and NaN are SQL NULL for predicates and strict aggregates.
    assert db.query_scalar("SELECT count(x) FROM f") == 1
    assert db.query_scalar("SELECT count(*) FROM f WHERE x IS NULL") == 2


def test_int_overflow_demotes_column_and_falls_back():
    """A value outside int64 demotes the packed column to an object list;
    queries still answer exactly, just without the vectorized path."""
    db = Database(num_segments=2)
    db.create_table("big", [("id", "integer"), ("v", "bigint")])
    db.load_rows("big", [(1, 10), (2, 2**70), (3, -5), (4, None)])
    table = db.catalog.get_table("big")
    assert any(
        table.column_store(segment).numeric_view(1) is None
        for segment in range(table.num_segments)
        if len(table.column_store(segment))
    )
    rows = db.execute("SELECT id, v FROM big ORDER BY id").rows
    assert rows == [(1, 10), (2, 2**70), (3, -5), (4, None)]
    result = db.execute("SELECT id FROM big WHERE v > 0 ORDER BY id")
    assert [row[0] for row in result.rows] == [1, 2]
    assert result.stats.where_vectorized is False


def test_vectorized_scan_stats_and_accounting():
    """rows_scanned counts bitmap width (rows touched); rows_matched the
    popcount; selectivity is their ratio."""
    columnar_db, row_db = _make_pair(_seed_rows())
    total = columnar_db.query_scalar("SELECT count(*) FROM t")
    query = "SELECT count(*) FROM t WHERE a < 0"
    result = columnar_db.execute(query)
    assert result.stats.where_vectorized is True
    assert result.stats.rows_scanned == total
    matched = result.stats.rows_matched
    assert result.stats.bitmap_selectivity == pytest.approx(matched / total)
    assert result.stats.scan_details[0].vectorized is True
    # Row storage answers identically but never vectorizes.
    row_result = row_db.execute(query)
    assert row_result.rows == result.rows
    assert row_result.stats.where_vectorized is False
    assert row_result.stats.bitmap_selectivity is None


def test_dml_stats_report_vectorized_where():
    columnar_db, _ = _make_pair(_seed_rows(seed=3))
    delete = columnar_db.execute("DELETE FROM t WHERE a < -25")
    assert delete.stats.where_vectorized is True
    assert delete.stats.rows_matched == delete.rowcount
    update = columnar_db.execute("UPDATE t SET b = 0.0 WHERE a > 25")
    assert update.stats.where_vectorized is True
    # Text equality runs in code space over the dictionary-encoded column.
    text_delete = columnar_db.execute("DELETE FROM t WHERE grp = 'a'")
    assert text_delete.stats.where_vectorized is True
    # Function calls stay outside the vector subset → row path, same effect.
    fallback = columnar_db.execute("DELETE FROM t WHERE abs(a) > 90")
    assert fallback.stats.where_vectorized is False


def test_explain_analyze_renders_vectorized_flag(db_pair):
    columnar_db, row_db = db_pair
    plan_c = "\n".join(
        row[0]
        for row in columnar_db.execute(
            "EXPLAIN ANALYZE SELECT count(*) FROM t WHERE a < 0"
        ).rows
    )
    assert "Vectorized: yes" in plan_c
    plan_r = "\n".join(
        row[0]
        for row in row_db.execute(
            "EXPLAIN ANALYZE SELECT count(*) FROM t WHERE a < 0"
        ).rows
    )
    assert "Vectorized: no" in plan_r


def test_per_segment_cache_invalidation_row_mode():
    """Satellite regression: mutating one segment must not invalidate other
    segments' cached columnar views (row-tuple storage caches per segment)."""
    db = Database(num_segments=3, columnar_storage=False)
    db.create_table("c", [("id", "integer"), ("x", "double precision")])
    table = db.catalog.get_table("c")
    # Round-robin placement: rows land on segments 0, 1, 2, 0, ...
    table.insert((1, 1.0))
    table.insert((2, 2.0))
    table.insert((3, 3.0))
    warm = [table.segment_columns(segment) for segment in range(3)]
    table.insert((4, 4.0))  # round-robin cursor → segment 0
    assert table.segment_columns(1) is warm[1]
    assert table.segment_columns(2) is warm[2]
    assert table.segment_columns(0) is not warm[0]
    assert list(table.segment_columns(0)[0]) == [1, 4]


def test_column_store_take_preserves_values():
    """keep_positions (bitmap DELETE) preserves exact values and nulls."""
    db = Database(num_segments=1)
    db.create_table("k", [("id", "integer"), ("x", "double precision")])
    db.load_rows(
        "k", [(1, 1.5), (2, None), (3, float("nan")), (4, -0.0), (5, 2.5)]
    )
    db.execute("DELETE FROM k WHERE id = 5")
    rows = db.execute("SELECT id, x FROM k ORDER BY id").rows
    assert rows[0] == (1, 1.5)
    assert rows[1][1] is None
    assert isinstance(rows[2][1], float) and math.isnan(rows[2][1])
    assert rows[3][1] == 0.0 and math.copysign(1.0, rows[3][1]) == -1.0


def test_large_int_comparison_against_float_falls_back_exactly():
    """int64 values beyond 2**53 compare exactly (the vector path must
    abort rather than round through float64)."""
    huge = 2**53 + 1
    columnar_db, row_db = _make_pair([])
    for db in (columnar_db, row_db):
        db.create_table("p", [("id", "integer"), ("v", "bigint")])
        db.load_rows("p", [(1, huge), (2, huge - 1), (3, 0)])
    query = f"SELECT id FROM p WHERE v > {float(2**53)!r} ORDER BY id"
    _assert_results_identical(
        columnar_db.execute(query), row_db.execute(query), query
    )
