"""Worker-pool supervision: crashes, hangs, retries, fallback, passthrough.

The contract (``docs/robustness.md``): *infrastructure* failures — a dead
or hung worker, an unpicklable dispatch — are retried with backoff and, if
the budget runs out, fall back to in-process execution with
``ExecutionStats.parallel_fallback_reason`` set; results are byte-identical
either way.  *Query* errors raised by user expressions are none of the
pool's business: they propagate to the caller with exactly the message the
in-process tier produces, and are never retried (a side-effecting UDA must
not run twice because a *different* worker died).
"""

from __future__ import annotations

import pickle

import pytest

from repro.engine import Database, FaultInjector, WorkerPoolError
from repro.engine.faults import PICKLE_ERROR, SLOW_WORKER, WORKER_CRASH, WORKER_HANG

ROWS = 240
EXPECTED_SUM = sum(i * 2 for i in range(ROWS))


def _make_db(
    faults=None, *, parallel: int = 2, task_timeout: float = 5.0, retries: int = 2
) -> Database:
    db = Database(
        num_segments=4,
        parallel=parallel,
        faults=faults,
        parallel_task_timeout=task_timeout,
        parallel_task_retries=retries,
        parallel_min_dispatch_rows=0,
    )
    db.execute("CREATE TABLE t (k INTEGER, v INTEGER)")
    db.load_rows("t", [(i % 12, i * 2) for i in range(ROWS)])
    return db


def test_worker_crash_retries_to_byte_identical_result():
    """A SIGKILL'd worker mid-aggregate: retry succeeds, stats record it."""
    faults = FaultInjector(7).arm("parallel.task", WORKER_CRASH, max_fires=1)
    db = _make_db(faults, task_timeout=3.0)
    try:
        result = db.execute("SELECT sum(v) FROM t")
        assert result.rows[0][0] == EXPECTED_SUM
        assert result.stats.worker_retries > 0
        assert result.stats.parallel_fallback_reason is None  # retry, not fallback
        assert db._worker_pool.stats()["infra_failures"] >= 1
    finally:
        db.close()


def test_worker_hang_deadline_respawn():
    """A hung worker occupies its pool slot; only respawn reclaims it."""
    faults = FaultInjector(7).arm("parallel.task", WORKER_HANG, max_fires=1)
    db = _make_db(faults, task_timeout=1.0)
    try:
        result = db.execute("SELECT sum(v) FROM t")
        assert result.rows[0][0] == EXPECTED_SUM
        assert result.stats.pool_respawns >= 1
        assert db._worker_pool.stats()["pool_respawns"] >= 1
    finally:
        db.close()


def test_crash_every_attempt_falls_back_with_reason():
    """Retry budget exhausted: in-process fallback, reason on the stats."""
    faults = FaultInjector(7).arm("parallel.task", WORKER_CRASH)  # unbounded
    db = _make_db(faults, task_timeout=1.0, retries=1)
    try:
        result = db.execute("SELECT sum(v) FROM t")
        assert result.rows[0][0] == EXPECTED_SUM  # fallback is byte-identical
        assert result.stats.parallel_fallback_reason == "worker_lost"
        assert db._worker_pool.stats()["fallbacks"] >= 1
    finally:
        db.close()


def test_pickle_error_is_nonretryable_fallback():
    """An unshippable dispatch never retries — straight to fallback."""
    faults = FaultInjector(7).arm("parallel.dispatch", PICKLE_ERROR, max_fires=1)
    db = _make_db(faults)
    try:
        result = db.execute("SELECT sum(v) FROM t")
        assert result.rows[0][0] == EXPECTED_SUM
        assert result.stats.parallel_fallback_reason == "pickle_error"
        assert result.stats.worker_retries == 0
        counters = db._worker_pool.stats()
        assert counters["fallbacks"] == 1
        assert counters["worker_retries"] == 0
    finally:
        db.close()


def test_slow_worker_finishes_within_deadline():
    """A slow (not hung) worker completes normally; no retry, no fallback."""
    faults = FaultInjector(7).arm(
        "parallel.task", SLOW_WORKER, max_fires=2, delay=0.05
    )
    db = _make_db(faults, task_timeout=5.0)
    try:
        result = db.execute("SELECT sum(v) FROM t")
        assert result.rows[0][0] == EXPECTED_SUM
        assert result.stats.worker_retries == 0
        assert result.stats.parallel_fallback_reason is None
    finally:
        db.close()


def test_query_error_propagates_byte_identical_and_is_not_retried():
    """A user-expression error is a query error: same type, same message as
    the in-process tier, zero retries, zero fallbacks."""
    rows = [(i % 4, f"row{i}") for i in range(ROWS)]
    inprocess = Database(num_segments=4)
    inprocess.execute("CREATE TABLE s (k INTEGER, name TEXT)")
    inprocess.load_rows("s", rows)
    parallel = _make_db()
    parallel.execute("CREATE TABLE s (k INTEGER, name TEXT)")
    parallel.load_rows("s", rows)
    sql = "SELECT avg(name) FROM s"  # ValueError inside the fold itself
    try:
        with pytest.raises(Exception) as baseline:
            inprocess.execute(sql)
        with pytest.raises(Exception) as pooled:
            parallel.execute(sql)
        assert type(pooled.value) is type(baseline.value)
        assert str(pooled.value) == str(baseline.value)
        counters = parallel._worker_pool.stats()
        assert counters["query_errors"] >= 1
        assert counters["worker_retries"] == 0
        assert counters["fallbacks"] == 0
    finally:
        inprocess.close()
        parallel.close()


def test_grouped_aggregate_under_crash():
    """GROUP BY rides the same supervision; groups stay byte-identical."""
    faults = FaultInjector(11).arm("parallel.task", WORKER_CRASH, max_fires=1)
    db = _make_db(faults, task_timeout=3.0)
    plain = Database(num_segments=4)
    plain.execute("CREATE TABLE t (k INTEGER, v INTEGER)")
    plain.load_rows("t", [(i % 12, i * 2) for i in range(ROWS)])
    sql = "SELECT k, sum(v), count(*) FROM t GROUP BY k ORDER BY k"
    try:
        assert db.execute(sql).rows == plain.execute(sql).rows
    finally:
        db.close()
        plain.close()


def test_worker_pool_error_pickles():
    """The error crosses the process boundary with its fields intact."""
    err = WorkerPoolError("worker_lost", retries=2, respawns=1)
    clone = pickle.loads(pickle.dumps(err))
    assert isinstance(clone, WorkerPoolError)
    assert clone.reason == "worker_lost"
    assert clone.retries == 2 and clone.respawns == 1
    assert str(clone) == str(err)


def test_pool_counters_accumulate_across_statements():
    faults = FaultInjector(5).arm("parallel.task", WORKER_CRASH, max_fires=2)
    db = _make_db(faults, task_timeout=3.0)
    try:
        for _ in range(3):
            assert db.execute("SELECT sum(v) FROM t").rows[0][0] == EXPECTED_SUM
        counters = db._worker_pool.stats()
        assert counters["dispatches"] >= 3
        assert counters["infra_failures"] >= 1
        assert counters["query_errors"] == 0
    finally:
        db.close()


def test_respawned_pool_keeps_serving():
    """After an explicit respawn the pool dispatches as if nothing happened."""
    db = _make_db()
    try:
        before = db.execute("SELECT sum(v) FROM t").rows[0][0]
        db._worker_pool.respawn()
        assert db.execute("SELECT sum(v) FROM t").rows[0][0] == before
        assert db._worker_pool.stats()["pool_respawns"] == 1
    finally:
        db.close()
