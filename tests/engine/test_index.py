"""Secondary-index structures and their maintenance under DML.

Covers the :mod:`repro.engine.index` machinery directly (probes, NULL
exclusion, remapping, degradation) and the DDL surface (CREATE/DROP INDEX,
catalog registration, cascades), plus maintenance parity: after any DML
sequence, every index must be indistinguishable from one rebuilt from
scratch, and indexed query results must stay byte-identical to the
sequential-scan plans.
"""

from __future__ import annotations

import math

import pytest

from repro import Database
from repro.engine.index import HashIndex, SortedIndex, make_index
from repro.errors import CatalogError


def _entries(index, table):
    """Every entry the index would return, via exhaustive probes."""
    if isinstance(index, SortedIndex):
        return index.probe_range(None, None)
    # Hash index: probe every distinct stored value.
    seen = set()
    out = []
    for value in table.column_values(index.column_name):
        if value is None or (isinstance(value, float) and math.isnan(value)):
            continue
        key = value
        if key in seen:
            continue
        seen.add(key)
        out.extend(index.probe_eq(value))
    return sorted(out)


def _fresh_rebuild(index, table):
    clone = make_index("clone", table.name, index.column_name, index.column_index, index.kind)
    clone.rebuild(table._segments)
    return clone


def assert_index_consistent(db, index_name):
    """The live (incrementally maintained) index equals a scratch rebuild."""
    index = db.catalog.get_index(index_name)
    table = db.table(index.table_name)
    clone = _fresh_rebuild(index, table)
    assert index.usable == clone.usable
    if index.usable:
        assert _entries(index, table) == _entries(clone, table)
        assert index.entry_count() == clone.entry_count()


# ---------------------------------------------------------------------------
# Structure-level behaviour
# ---------------------------------------------------------------------------


class TestHashIndex:
    def test_probe_eq_returns_scan_order(self):
        index = HashIndex("i", "t", "k", 0)
        index.add(5, 1, 0)
        index.add(5, 0, 3)
        index.add(5, 0, 1)
        assert index.probe_eq(5) == [(0, 1), (0, 3), (1, 0)]
        assert index.probe_eq(6) == []

    def test_null_and_nan_keys_excluded(self):
        index = HashIndex("i", "t", "k", 0)
        index.add(None, 0, 0)
        index.add(float("nan"), 0, 1)
        index.add(1, 0, 2)
        assert index.entry_count() == 1
        assert index.probe_eq(None) == []
        assert index.probe_eq(float("nan")) == []

    def test_numeric_cross_type_equality(self):
        # 1 and 1.0 are the same key, like SQL `=` and GROUP BY.
        index = HashIndex("i", "t", "k", 0)
        index.add(1, 0, 0)
        assert index.probe_eq(1.0) == [(0, 0)]

    def test_count_eq(self):
        index = HashIndex("i", "t", "k", 0)
        for position in range(3):
            index.add("x", 0, position)
        assert index.count_eq("x") == 3
        assert index.count_eq("y") == 0
        assert index.count_eq(None) == 0


class TestSortedIndex:
    def test_range_probe_bounds(self):
        index = SortedIndex("i", "t", "k", 0)
        for position, value in enumerate([10, 20, 30, 40]):
            index.add(value, 0, position)
        assert index.probe_range(20, 40, low_strict=False, high_strict=True) == [(0, 1), (0, 2)]
        assert index.probe_range(20, 40, low_strict=True, high_strict=False) == [(0, 2), (0, 3)]
        assert index.probe_range(None, 15) == [(0, 0)]
        assert index.probe_range(35, None) == [(0, 3)]
        assert index.probe_range(41, None) == []
        assert index.count_range(20, 40) == 3

    def test_equality_probe(self):
        index = SortedIndex("i", "t", "k", 0)
        for position, value in enumerate([1, 2, 2, 3]):
            index.add(value, 0, position)
        assert index.probe_eq(2) == [(0, 1), (0, 2)]
        assert index.count_eq(2) == 2

    def test_null_bounds_never_match(self):
        index = SortedIndex("i", "t", "k", 0)
        index.add(1, 0, 0)
        assert index.probe_range(None, float("nan")) == []
        assert index.probe_eq(None) == []

    def test_mixed_kind_keys_degrade(self):
        index = SortedIndex("i", "t", "k", 0)
        index.add(1, 0, 0)
        index.add("x", 0, 1)
        assert not index.usable
        assert index.probe_eq(1) is None

    def test_cross_kind_probe_declines(self):
        # An int index probed with a string must fall back (the scan's
        # comparison would raise); the probe signals that with None.
        index = SortedIndex("i", "t", "k", 0)
        index.add(1, 0, 0)
        assert index.probe_eq("x") is None
        assert index.probe_range("a", None) is None

    def test_unorderable_keys_degrade(self):
        index = SortedIndex("i", "t", "k", 0)
        index.add([1, 2], 0, 0)
        assert not index.usable


# ---------------------------------------------------------------------------
# DDL surface
# ---------------------------------------------------------------------------


def _make_db(**kwargs) -> Database:
    db = Database(num_segments=4, **kwargs)
    db.execute("CREATE TABLE t (id integer, k integer, name text)")
    db.load_rows("t", [(i, i % 10, f"name_{i % 7}") for i in range(200)])
    return db


class TestIndexDDL:
    def test_create_and_list(self):
        db = _make_db()
        db.execute("CREATE INDEX t_k ON t USING hash (k)")
        db.execute("CREATE INDEX t_id ON t (id)")
        listing = db.catalog.indexes("t")
        assert [(row["indexname"], row["kind"]) for row in listing] == [
            ("t_id", "sorted"),
            ("t_k", "hash"),
        ]
        assert all(row["entries"] == 200 for row in listing)

    def test_btree_is_sorted_alias(self):
        db = _make_db()
        db.execute("CREATE INDEX t_id ON t USING btree (id)")
        assert db.catalog.get_index("t_id").kind == "sorted"

    def test_duplicate_name_rejected(self):
        db = _make_db()
        db.execute("CREATE INDEX t_k ON t (k)")
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX t_k ON t (id)")
        # IF NOT EXISTS suppresses the error.
        db.execute("CREATE INDEX IF NOT EXISTS t_k ON t (id)")

    def test_unknown_column_rejected(self):
        db = _make_db()
        with pytest.raises(Exception):
            db.execute("CREATE INDEX t_x ON t (missing)")
        assert db.catalog.indexes() == []

    def test_drop_index(self):
        db = _make_db()
        db.execute("CREATE INDEX t_k ON t (k)")
        db.execute("DROP INDEX t_k")
        assert db.catalog.indexes() == []
        assert db.table("t").indexes == []
        with pytest.raises(CatalogError):
            db.execute("DROP INDEX t_k")
        db.execute("DROP INDEX IF EXISTS t_k")

    def test_drop_table_cascades_to_indexes(self):
        db = _make_db()
        db.execute("CREATE INDEX t_k ON t (k)")
        db.execute("ANALYZE t")
        db.execute("DROP TABLE t")
        assert db.catalog.indexes() == []
        assert db.catalog.statistics() == []

    def test_alter_rename_rebuilds_and_follows(self):
        db = _make_db()
        db.execute("CREATE INDEX t_k ON t USING hash (k)")
        db.execute("ALTER TABLE t RENAME TO u")
        index = db.catalog.get_index("t_k")
        assert index.table_name == "u"
        assert_index_consistent(db, "t_k")
        rows = db.execute("SELECT count(*) FROM u WHERE k = 3").scalar()
        assert rows == 20
        assert db.last_stats.scan_details[0].access == "index"


# ---------------------------------------------------------------------------
# Maintenance parity under DML
# ---------------------------------------------------------------------------

_DML_SEQUENCE = [
    "INSERT INTO t VALUES (900, 3, 'fresh')",
    "INSERT INTO t VALUES (901, NULL, NULL)",
    "UPDATE t SET k = k + 1 WHERE id < 50",
    "DELETE FROM t WHERE k = 5",
    "UPDATE t SET name = 'renamed' WHERE k = 2",
    "DELETE FROM t WHERE id >= 150",
    "TRUNCATE t",
    "INSERT INTO t VALUES (1, 1, 'one'), (2, 2, 'two'), (3, NULL, 'three')",
]

_CHECK_QUERIES = [
    "SELECT * FROM t WHERE k = 3 ORDER BY id",
    "SELECT * FROM t WHERE k = 2 ORDER BY id",
    "SELECT id FROM t WHERE id >= 10 AND id < 60 ORDER BY id",
    "SELECT count(*), sum(id) FROM t WHERE name = 'renamed'",
    "SELECT k, count(*) FROM t WHERE k > 1 GROUP BY k ORDER BY k",
]


def test_dml_maintenance_parity():
    """After every DML step: indexed results == scan results, and every
    incrementally maintained index == a scratch rebuild."""
    indexed = _make_db()
    scan = _make_db(use_indexes=False)
    indexed.execute("CREATE INDEX t_k ON t USING hash (k)")
    indexed.execute("CREATE INDEX t_id ON t (id)")
    indexed.execute("CREATE INDEX t_name ON t (name)")
    for statement in _DML_SEQUENCE:
        indexed.execute(statement)
        scan.execute(statement)
        for name in ("t_k", "t_id", "t_name"):
            assert_index_consistent(indexed, name)
        for query in _CHECK_QUERIES:
            left = indexed.execute(query)
            right = scan.execute(query)
            assert left.rows == right.rows, (statement, query)


def test_bulk_insert_rebuild_path():
    """insert_many above the bulk threshold rebuilds instead of insorting."""
    db = _make_db()
    db.execute("CREATE INDEX t_id ON t (id)")
    db.load_rows("t", [(1000 + i, i % 5, None) for i in range(1000)])
    assert_index_consistent(db, "t_id")
    assert db.execute("SELECT count(*) FROM t WHERE id = 1500").scalar() == 1


def test_failed_bulk_load_still_rebuilds_indexes():
    """A bulk load that raises mid-way must not leave indexes stale: rows
    inserted before the failure are in the table, so the index rebuild has
    to run even on the error path."""
    db = _make_db()
    db.execute("CREATE INDEX t_id ON t (id)")
    bad_rows = [(2000 + i, 1, None) for i in range(300)] + [("boom", 1, None)]
    with pytest.raises(Exception):
        db.load_rows("t", bad_rows)
    assert_index_consistent(db, "t_id")
    result = db.execute("SELECT id FROM t WHERE id = 2200")
    assert result.rows == [(2200,)]
    assert db.last_stats.scan_details[0].access == "index"


def test_redistribute_rebuilds_indexes():
    db = _make_db()
    db.execute("CREATE INDEX t_k ON t USING hash (k)")
    db.set_num_segments(7)
    assert_index_consistent(db, "t_k")
    baseline = _make_db(use_indexes=False)
    baseline.set_num_segments(7)
    query = "SELECT * FROM t WHERE k = 4 ORDER BY id"
    assert db.execute(query).rows == baseline.execute(query).rows


def test_degraded_index_falls_back_to_scan():
    """A column that mixes comparison kinds degrades its sorted index, and
    queries silently take the sequential path."""
    db = Database()
    db.execute("CREATE TABLE anyt (id integer, v text)")
    db.create_table("mixed", [("id", "integer"), ("v", "any")], replace=True)
    db.load_rows("mixed", [(1, 5), (2, "text")])
    db.create_index("mixed_v", "mixed", "v")
    index = db.catalog.get_index("mixed_v")
    assert not index.usable
    result = db.execute("SELECT id FROM mixed WHERE v = 5")
    assert result.rows == [(1,)]
    assert db.last_stats.scan_details[0].access == "seq"
