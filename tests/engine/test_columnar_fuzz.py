"""Randomized storage-parity fuzzing across the three storage configurations.

Every scenario builds three databases with identical contents — dictionary
compression on (the default), ``columnar_storage=False`` (row tuples), and
``columnar_compression=False`` (packed columns, no dictionaries) — then runs
a randomized script of DML and queries against all three.  After every
mutation the full table must be byte-identical across configurations
(type-exact values, NaN round-trips as NaN, None as None), DML rowcounts
must agree, and every SELECT must agree on both its result set and its
``ExecutionStats`` row accounting (``rows_scanned`` / ``rows_matched``).

A quarter of the seeds shrink ``DictColumn.MAX_DISTINCT`` to a handful of
codes so that high-cardinality text columns demote from dictionary to plain
object storage *mid-script*, proving demotion is observationally invisible.

Scenarios are seeded and fully reproducible: a failure names its seed.
"""

from __future__ import annotations

import math
import random

import pytest

from repro import Database
from repro.engine import columnar


SEEDS = list(range(25))
ROUNDS = 8  # DML+query rounds per seed; 25 seeds x 8 rounds = 200 scenarios

_LOW_CARD = ["alpha", "beta", "gamma", "delta", None]
_BOOLS = [True, False, None]


# ---------------------------------------------------------------------------
# Random schema / value generation
# ---------------------------------------------------------------------------

_COLUMN_KINDS = [
    ("text_low", "text"),
    ("text_high", "text"),
    ("num", "double precision"),
    ("count", "integer"),
    ("flag", "boolean"),
]


def _random_schema(rng):
    kinds = rng.sample(_COLUMN_KINDS, rng.randrange(2, 5))
    columns = [("id", "integer")]
    picked = []
    for base, sql_type in kinds:
        name = f"{base}_{len(picked)}"
        columns.append((name, sql_type))
        picked.append((name, base))
    return columns, picked


def _random_value(rng, kind):
    if rng.random() < 0.15:
        return None
    if kind == "text_low":
        return rng.choice([v for v in _LOW_CARD if v is not None])
    if kind == "text_high":
        return f"v{rng.randrange(10_000)}"
    if kind == "num":
        if rng.random() < 0.05:
            return float("nan")
        return round(rng.uniform(-100.0, 100.0), 3)
    if kind == "count":
        return rng.randrange(-50, 50)
    if kind == "flag":
        return rng.choice([True, False])
    raise AssertionError(kind)


def _random_rows(rng, picked, start_id, count):
    return [
        tuple([start_id + i] + [_random_value(rng, kind) for _, kind in picked])
        for i in range(count)
    ]


# ---------------------------------------------------------------------------
# Byte-identity helpers
# ---------------------------------------------------------------------------


def _values_identical(left, right) -> bool:
    if type(left) is not type(right):
        return False
    if isinstance(left, float):
        if math.isnan(left) or math.isnan(right):
            return math.isnan(left) and math.isnan(right)
        return left == right
    if isinstance(left, (list, tuple)):
        return len(left) == len(right) and all(
            _values_identical(l, r) for l, r in zip(left, right)
        )
    return left == right


def _assert_same_rows(results, label):
    base = results[0]
    for other, name in zip(results[1:], ("row-mode", "uncompressed")):
        assert base.columns == other.columns, f"{label}: columns vs {name}"
        assert len(base.rows) == len(other.rows), (
            f"{label}: {len(base.rows)} rows vs {len(other.rows)} ({name})"
        )
        for row_c, row_o in zip(base.rows, other.rows):
            assert _values_identical(tuple(row_c), tuple(row_o)), (
                f"{label} vs {name}: {row_c!r} != {row_o!r}"
            )


# ---------------------------------------------------------------------------
# Random predicates / queries
# ---------------------------------------------------------------------------


def _sql_literal(value):
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, float) and math.isnan(value):
        return "'nan'"  # never used as a predicate constant
    return repr(value)


def _random_predicate(rng, picked, max_id):
    name, kind = rng.choice(picked)
    roll = rng.random()
    if roll < 0.12:
        return f"{name} IS {'NOT ' if rng.random() < 0.5 else ''}NULL"
    if kind in ("text_low", "text_high"):
        if roll < 0.35:
            sample = ", ".join(
                _sql_literal(_random_value(rng, kind) or "alpha")
                for _ in range(rng.randrange(1, 4))
            )
            return f"{name} {'NOT ' if rng.random() < 0.4 else ''}IN ({sample})"
        if roll < 0.55 and kind == "text_high":
            return f"{name} LIKE 'v{rng.randrange(10)}%'"
        if roll < 0.55:
            return f"{name} LIKE '{rng.choice(['al%', '%ta', '%mm%', 'beta'])}'"
        op = rng.choice(["=", "!=", "<", "<=", ">", ">="])
        constant = _random_value(rng, kind) or "gamma"
        return f"{name} {op} {_sql_literal(constant)}"
    if kind == "flag":
        return f"{name} = {rng.choice(['TRUE', 'FALSE'])}"
    if roll < 0.3:
        low = rng.randrange(-40, 0)
        return f"{name} BETWEEN {low} AND {low + rng.randrange(10, 60)}"
    op = rng.choice(["=", "!=", "<", "<=", ">", ">="])
    constant = rng.randrange(-30, 30) if kind == "count" else round(rng.uniform(-50, 50), 1)
    return f"{name} {op} {constant}"


def _random_where(rng, picked, max_id):
    terms = [_random_predicate(rng, picked, max_id) for _ in range(rng.randrange(1, 3))]
    joined = f" {rng.choice(['AND', 'OR'])} ".join(terms)
    if rng.random() < 0.15:
        return f"NOT ({joined})"
    return joined


def _random_query(rng, picked, max_id):
    where = _random_where(rng, picked, max_id)
    roll = rng.random()
    if roll < 0.2:
        return f"SELECT count(*) FROM t WHERE {where}"
    if roll < 0.35:
        numeric = [n for n, k in picked if k in ("num", "count")]
        if numeric:
            target = rng.choice(numeric)
            return f"SELECT count(*), min({target}), max({target}) FROM t WHERE {where}"
    return f"SELECT * FROM t WHERE {where} ORDER BY id"


# ---------------------------------------------------------------------------
# The fuzz loop
# ---------------------------------------------------------------------------


def _make_trio(num_segments, distributed_by, columns, rows):
    configs = [
        {"columnar_storage": True, "columnar_compression": True},
        {"columnar_storage": False},
        {"columnar_storage": True, "columnar_compression": False},
    ]
    databases = []
    for config in configs:
        db = Database(num_segments=num_segments, **config)
        db.create_table("t", columns, distributed_by=distributed_by)
        db.load_rows("t", rows)
        databases.append(db)
    return databases


def _run_everywhere(databases, statement, label):
    results = []
    for db in databases:
        try:
            results.append(db.execute(statement))
        except Exception as exc:  # parity includes errors
            results.append(exc)
    kinds = [type(r) for r in results]
    assert kinds.count(kinds[0]) == len(kinds), f"{label}: mixed outcomes {kinds}"
    if isinstance(results[0], Exception):
        return None
    return results


@pytest.mark.parametrize("seed", SEEDS)
def test_storage_parity_fuzz(seed, monkeypatch):
    rng = random.Random(seed)
    if seed % 4 == 0:
        # Force mid-script demotion: high-cardinality text columns blow the
        # dictionary almost immediately, flipping dict -> object storage.
        monkeypatch.setattr(columnar.DictColumn, "MAX_DISTINCT", 8)

    columns, picked = _random_schema(rng)
    num_segments = rng.randrange(1, 5)
    distributed_by = "id" if rng.random() < 0.7 else None
    next_id = rng.randrange(40, 120) + 1
    rows = _random_rows(rng, picked, 1, next_id - 1)
    databases = _make_trio(num_segments, distributed_by, columns, rows)

    def check_full_parity(label):
        results = _run_everywhere(databases, "SELECT * FROM t ORDER BY id", label)
        assert results is not None, label
        _assert_same_rows(results, label)

    check_full_parity(f"seed={seed} initial load")

    for round_index in range(ROUNDS):
        label = f"seed={seed} round={round_index}"

        # One random mutation per round.
        roll = rng.random()
        if roll < 0.3:
            batch = _random_rows(rng, picked, next_id, rng.randrange(3, 12))
            next_id += len(batch)
            placeholders = ", ".join(
                "(" + ", ".join(_sql_literal(v) for v in row) + ")" for row in batch
            )
            if any(
                isinstance(v, float) and math.isnan(v) for row in batch for v in row
            ):
                for db in databases:
                    db.load_rows("t", batch)
            else:
                statement = f"INSERT INTO t VALUES {placeholders}"
                results = _run_everywhere(databases, statement, f"{label} insert")
                assert results is not None
                counts = {r.rowcount for r in results}
                assert len(counts) == 1, f"{label} insert rowcounts {counts}"
        elif roll < 0.65:
            name, kind = rng.choice(picked)
            new_value = _random_value(rng, kind)
            if isinstance(new_value, float) and math.isnan(new_value):
                new_value = None
            where = _random_where(rng, picked, next_id)
            statement = (
                f"UPDATE t SET {name} = {_sql_literal(new_value)} WHERE {where}"
            )
            results = _run_everywhere(databases, statement, f"{label} update")
            if results is not None:
                counts = {r.rowcount for r in results}
                assert len(counts) == 1, f"{label} update rowcounts {counts}"
        elif roll < 0.85:
            where = _random_where(rng, picked, next_id)
            statement = f"DELETE FROM t WHERE {where}"
            results = _run_everywhere(databases, statement, f"{label} delete")
            if results is not None:
                counts = {r.rowcount for r in results}
                assert len(counts) == 1, f"{label} delete rowcounts {counts}"
        else:
            name, _ = rng.choice(picked)
            method = " USING hash" if rng.random() < 0.5 else ""
            statement = f"CREATE INDEX idx_{round_index} ON t{method} ({name})"
            _run_everywhere(databases, statement, f"{label} create-index")

        check_full_parity(f"{label} after mutation")

        # A couple of random queries with stats accounting parity.
        for query_index in range(2):
            query = _random_query(rng, picked, next_id)
            results = _run_everywhere(
                databases, query, f"{label} q{query_index}: {query}"
            )
            if results is None:
                continue
            _assert_same_rows(results, f"{label} q{query_index}: {query}")
            accounting = {
                (r.stats.rows_scanned, r.stats.rows_matched) for r in results
            }
            assert len(accounting) == 1, (
                f"{label} q{query_index}: accounting diverged {accounting} ({query})"
            )


def test_fuzz_is_reproducible():
    """The generator is pure in the seed: same seed, same script."""
    def script(seed):
        rng = random.Random(seed)
        columns, picked = _random_schema(rng)
        rows = _random_rows(rng, picked, 1, 30)
        queries = [_random_query(rng, picked, 31) for _ in range(10)]
        return columns, rows, queries

    assert script(11) == script(11)
    assert script(11) != script(12)
