"""Tests for DDL / DML execution: CREATE, CTAS, INSERT, UPDATE, DELETE, DROP, temp tables."""

import numpy as np
import pytest

from repro import Database
from repro.errors import CatalogError, ExecutionError


class TestCreateAndInsert:
    def test_create_table_and_insert_values(self, db):
        db.execute("CREATE TABLE m (id integer, name text, score double precision)")
        db.execute("INSERT INTO m VALUES (1, 'a', 1.5), (2, 'b', 2.5)")
        assert db.query_scalar("SELECT count(*) FROM m") == 2

    def test_create_table_if_not_exists(self, db):
        db.execute("CREATE TABLE m (id integer)")
        db.execute("CREATE TABLE IF NOT EXISTS m (id integer)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE m (id integer)")

    def test_insert_with_column_list_fills_nulls(self, db):
        db.execute("CREATE TABLE m (id integer, name text, score double precision)")
        db.execute("INSERT INTO m (id, score) VALUES (1, 9.5)")
        row = db.query_dicts("SELECT * FROM m")[0]
        assert row["name"] is None and row["score"] == 9.5

    def test_insert_from_select(self, db):
        db.execute("CREATE TABLE src (v integer)")
        db.execute("INSERT INTO src VALUES (1), (2), (3)")
        db.execute("CREATE TABLE dst (v integer)")
        result = db.execute("INSERT INTO dst SELECT v * 10 FROM src WHERE v > 1")
        assert result.rowcount == 2
        assert db.execute("SELECT v FROM dst ORDER BY v").column("v") == [20, 30]

    def test_insert_arity_mismatch_raises(self, db):
        db.execute("CREATE TABLE m (a integer, b integer)")
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO m (a) VALUES (1, 2)")

    def test_insert_with_parameters(self, db):
        db.execute("CREATE TABLE m (x double precision[], y double precision)")
        db.execute("INSERT INTO m VALUES (%(x)s, %(y)s)", {"x": np.array([1.0, 2.0]), "y": 3.0})
        assert db.query_scalar("SELECT y FROM m") == 3.0

    def test_distributed_by_collocates_keys(self):
        db = Database(num_segments=4)
        db.execute("CREATE TABLE m (k integer, v integer) DISTRIBUTED BY (k)")
        db.execute("INSERT INTO m SELECT i % 4, i FROM generate_series(1, 100) g(i)")
        table = db.table("m")
        for segment in range(4):
            keys = {row[0] for row in table.segment_rows(segment)}
            # All rows of a key live on exactly one segment.
            for key in keys:
                others = [s for s in range(4) if s != segment and key in
                          {r[0] for r in table.segment_rows(s)}]
                assert not others


class TestCreateTableAs:
    def test_ctas_materializes_result(self, numbers_db):
        numbers_db.execute(
            "CREATE TABLE summary AS SELECT grp, count(*) AS n FROM t GROUP BY grp"
        )
        rows = numbers_db.query_dicts("SELECT * FROM summary ORDER BY grp")
        assert [row["n"] for row in rows] == [2, 3, 1]

    def test_temp_table_lifecycle(self, numbers_db):
        numbers_db.execute("CREATE TEMP TABLE staging AS SELECT id FROM t WHERE id < 3")
        assert numbers_db.query_scalar("SELECT count(*) FROM staging") == 2
        assert numbers_db.table("staging").temporary
        dropped = numbers_db.drop_temporary_tables()
        assert dropped == 1
        assert not numbers_db.has_table("staging")

    def test_ctas_existing_table_raises(self, numbers_db):
        with pytest.raises(CatalogError):
            numbers_db.execute("CREATE TABLE t AS SELECT 1 AS one")

    def test_ctas_preserves_array_values(self, db):
        db.create_table("v", [("x", "double precision[]")])
        db.load_rows("v", [(np.array([1.0, 2.0]),)])
        db.execute("CREATE TABLE copied AS SELECT x FROM v")
        value = db.query_scalar("SELECT x FROM copied")
        np.testing.assert_array_equal(value, [1.0, 2.0])


class TestUpdateDeleteDrop:
    def test_update_with_where(self, numbers_db):
        result = numbers_db.execute("UPDATE t SET value = value + 10 WHERE grp = 'a'")
        assert result.rowcount == 2
        values = numbers_db.execute("SELECT value FROM t WHERE grp = 'a' ORDER BY id").column("value")
        assert values == [11.0, 12.0]

    def test_update_all_rows(self, numbers_db):
        result = numbers_db.execute("UPDATE t SET grp = 'z'")
        assert result.rowcount == 6
        assert numbers_db.query_scalar("SELECT count(DISTINCT grp) FROM t") == 1

    def test_update_referencing_current_row(self, numbers_db):
        numbers_db.execute("UPDATE t SET value = id * 100 WHERE value IS NULL")
        assert numbers_db.query_scalar("SELECT value FROM t WHERE id = 5") == 500.0

    def test_delete_with_where_and_all(self, numbers_db):
        assert numbers_db.execute("DELETE FROM t WHERE grp = 'b'").rowcount == 3
        assert numbers_db.query_scalar("SELECT count(*) FROM t") == 3
        assert numbers_db.execute("DELETE FROM t").rowcount == 3
        assert numbers_db.query_scalar("SELECT count(*) FROM t") == 0

    def test_truncate(self, numbers_db):
        numbers_db.execute("TRUNCATE TABLE t")
        assert numbers_db.query_scalar("SELECT count(*) FROM t") == 0
        assert numbers_db.has_table("t")

    def test_drop_table(self, numbers_db):
        numbers_db.execute("DROP TABLE t")
        assert not numbers_db.has_table("t")
        with pytest.raises(CatalogError):
            numbers_db.execute("DROP TABLE t")
        numbers_db.execute("DROP TABLE IF EXISTS t")

    def test_alter_table_rename(self, numbers_db):
        numbers_db.execute("ALTER TABLE t RENAME TO renamed")
        assert numbers_db.has_table("renamed")
        assert not numbers_db.has_table("t")


class TestDatabaseFacade:
    def test_execute_script(self, db):
        results = db.execute_script(
            "CREATE TABLE s (v integer); INSERT INTO s VALUES (1), (2); SELECT sum(v) FROM s"
        )
        assert results[-1].scalar() == 3

    def test_unique_temp_name_and_context(self, db):
        name1 = db.unique_temp_name()
        name2 = db.unique_temp_name()
        assert name1 != name2
        with db.temporary_table() as name:
            db.create_table(name, [("v", "integer")], temporary=True)
            assert db.has_table(name)
        assert not db.has_table(name)

    def test_set_num_segments_redistributes(self, numbers_db):
        numbers_db.set_num_segments(3)
        assert numbers_db.table("t").num_segments == 3
        assert numbers_db.query_scalar("SELECT count(*) FROM t") == 6

    def test_create_function_and_use_in_sql(self, db):
        db.create_function("triple", lambda x: 3 * x, return_type="double precision")
        assert db.query_scalar("SELECT triple(14)") == 42

    def test_create_aggregate_and_use_in_sql(self, numbers_db):
        numbers_db.create_aggregate(
            "sum_of_squares",
            transition=lambda state, x: state + x * x,
            merge=lambda a, b: a + b,
            initial_state=0.0,
        )
        assert numbers_db.query_scalar(
            "SELECT sum_of_squares(value) FROM t WHERE value IS NOT NULL"
        ) == pytest.approx(66.0)

    def test_scalar_requires_single_cell(self, numbers_db):
        with pytest.raises(ExecutionError):
            numbers_db.query_scalar("SELECT id, value FROM t")

    def test_result_pretty_and_column(self, numbers_db):
        result = numbers_db.execute("SELECT id, grp FROM t ORDER BY id LIMIT 1")
        text = result.pretty()
        assert "RECORD 1" in text and "grp" in text
        with pytest.raises(ExecutionError):
            result.column("missing")
