"""Compiled/vectorized vs interpreted execution parity.

The engine has two execution tiers (``docs/engine-execution.md``): the
compiled fast path (positional-row closures + batched aggregate transitions)
and the interpreted row-at-a-time fallback.  They must be observationally
identical.  This suite runs a corpus of SELECTs — filters, arithmetic, NULL
semantics, GROUP BY, segmented aggregates, ORDER BY, CASE, LIKE, casts,
subscripts — through both tiers and asserts identical results, including
NULL propagation in comparisons and ``_divide``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import Database


def _make_pair(num_segments: int = 4):
    """Two databases with identical contents: compiled on, compiled off."""
    pair = []
    for compiled in (True, False):
        db = Database(num_segments=num_segments, compiled_execution=compiled)
        db.create_table(
            "t",
            [
                ("id", "integer"),
                ("grp", "text"),
                ("a", "double precision"),
                ("b", "double precision"),
                ("s", "text"),
                ("arr", "double precision[]"),
            ],
            distributed_by="id",
        )
        rows = []
        for i in range(1, 61):
            grp = "abc"[i % 3]
            a = None if i % 7 == 0 else float(i) * 1.5
            b = None if i % 11 == 0 else float(i % 5) - 2.0
            s = None if i % 13 == 0 else f"name_{i % 4}"
            arr = None if i % 17 == 0 else [float(i), float(i % 3), 1.0]
            rows.append((i, grp, a, b, s, arr))
        db.load_rows("t", rows)
        pair.append(db)
    return pair


@pytest.fixture(scope="module")
def db_pair():
    return _make_pair()


CORPUS = [
    # Projection and scalar arithmetic.
    "SELECT id, a + b, a - b, a * 2, -a FROM t ORDER BY id",
    "SELECT id, a / b FROM t WHERE b <> 0 ORDER BY id",
    "SELECT 7 / 2, 7.0 / 2, 5 % 3, 2 ^ 10 FROM t WHERE id = 1",
    # NULL semantics in comparisons and logic.
    "SELECT id FROM t WHERE a > 10 ORDER BY id",
    "SELECT id FROM t WHERE a IS NULL ORDER BY id",
    "SELECT id FROM t WHERE a IS NOT NULL AND b IS NULL ORDER BY id",
    "SELECT id, a = b, a <> b, a < b FROM t ORDER BY id",
    "SELECT id FROM t WHERE a > 5 AND b < 1 ORDER BY id",
    "SELECT id FROM t WHERE a > 80 OR b > 1 ORDER BY id",
    "SELECT id FROM t WHERE NOT (a > 10) ORDER BY id",
    "SELECT id FROM t WHERE a BETWEEN 10 AND 40 ORDER BY id",
    "SELECT id FROM t WHERE grp IN ('a', 'c') ORDER BY id",
    "SELECT id FROM t WHERE s LIKE 'name%' ORDER BY id",
    "SELECT id, s LIKE 'name_1' FROM t ORDER BY id",
    # CASE, casts, subscripts, functions, concatenation.
    "SELECT id, CASE WHEN a > 30 THEN 'big' WHEN a > 10 THEN 'mid' ELSE 'small' END FROM t ORDER BY id",
    "SELECT id, CAST(a AS text), CAST(id AS double precision) FROM t ORDER BY id",
    "SELECT id, arr[1], arr[5] FROM t ORDER BY id",
    "SELECT id, abs(b), coalesce(a, 0.0) FROM t ORDER BY id",
    "SELECT id, grp || '-' || s FROM t ORDER BY id",
    # Aggregates over the segmented path (columnar + batched kernels).
    "SELECT count(*) FROM t",
    "SELECT count(a), sum(a), avg(a), min(a), max(a) FROM t",
    "SELECT var_samp(a), var_pop(a), stddev(a), stddev_pop(a) FROM t",
    "SELECT bool_and(a > 0), bool_or(b > 1) FROM t",
    "SELECT vector_sum(arr) FROM t",
    "SELECT sum(a + b), avg(a * 2) FROM t",
    "SELECT count(DISTINCT grp) FROM t",
    # Order-sensitive aggregates (always row-at-a-time).
    "SELECT array_agg(grp) FROM t WHERE id <= 5",
    "SELECT string_agg(grp, ',') FROM t WHERE id <= 5",
    "SELECT string_agg(grp) FROM t WHERE id <= 5",
    # GROUP BY / HAVING / ORDER BY over aggregates.
    "SELECT grp, count(*), sum(a), avg(b) FROM t GROUP BY grp ORDER BY grp",
    "SELECT grp, count(*) FROM t GROUP BY grp HAVING count(*) > 15 ORDER BY grp",
    "SELECT grp, stddev(a) FROM t WHERE a IS NOT NULL GROUP BY grp ORDER BY grp",
    "SELECT id % 4, max(a) FROM t GROUP BY id % 4 ORDER BY 1",
    # DISTINCT / LIMIT / OFFSET.
    "SELECT DISTINCT grp FROM t ORDER BY grp",
    "SELECT id FROM t ORDER BY a DESC LIMIT 5",
    "SELECT id FROM t ORDER BY b, id LIMIT 7 OFFSET 3",
    # Joins and subqueries (fall back where needed, must still agree).
    "SELECT t1.id, t2.id FROM t t1 JOIN t t2 ON t1.id = t2.id - 1 WHERE t1.id < 5 ORDER BY t1.id",
    "SELECT sub.g, sub.n FROM (SELECT grp AS g, count(*) AS n FROM t GROUP BY grp) sub ORDER BY sub.g",
    "SELECT count(*) FROM generate_series(1, 100) AS gs(n)",
]


def _assert_value_equal(left, right, query):
    if isinstance(left, float) or isinstance(right, float):
        if left is None or right is None or (isinstance(left, float) and math.isnan(left)):
            assert left == right or (
                isinstance(right, float) and math.isnan(right)
            ), f"{query}: {left!r} != {right!r}"
        else:
            assert left == pytest.approx(right, rel=1e-9, abs=1e-12), (
                f"{query}: {left!r} != {right!r}"
            )
    elif isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        np.testing.assert_allclose(
            np.asarray(left, dtype=np.float64),
            np.asarray(right, dtype=np.float64),
            rtol=1e-9,
            err_msg=query,
        )
    elif isinstance(left, (list, tuple)) and isinstance(right, (list, tuple)):
        assert len(left) == len(right), f"{query}: length mismatch"
        for l, r in zip(left, right):
            _assert_value_equal(l, r, query)
    else:
        assert left == right, f"{query}: {left!r} != {right!r}"


def _assert_results_equal(compiled, interpreted, query):
    assert compiled.columns == interpreted.columns, query
    assert len(compiled.rows) == len(interpreted.rows), query
    for row_c, row_i in zip(compiled.rows, interpreted.rows):
        _assert_value_equal(list(row_c), list(row_i), query)


@pytest.mark.parametrize("query", CORPUS)
def test_compiled_matches_interpreted(db_pair, query):
    compiled_db, interpreted_db = db_pair
    _assert_results_equal(compiled_db.execute(query), interpreted_db.execute(query), query)


def test_null_propagation_in_divide(db_pair):
    compiled_db, interpreted_db = db_pair
    query = "SELECT id, a / b FROM t WHERE b IS NULL OR a IS NULL ORDER BY id"
    _assert_results_equal(compiled_db.execute(query), interpreted_db.execute(query), query)
    # NULL / x and x / NULL are NULL on both tiers, never a division error.
    for db in db_pair:
        rows = db.execute(query).rows
        assert rows and all(row[1] is None for row in rows)


def test_division_by_zero_raised_on_both_tiers(db_pair):
    from repro.errors import ExecutionError

    for db in db_pair:
        with pytest.raises(ExecutionError):
            db.execute("SELECT a / 0 FROM t WHERE a IS NOT NULL")


def test_parameters_bind_on_both_tiers(db_pair):
    query = "SELECT count(*) FROM t WHERE a > %(low)s"
    compiled_db, interpreted_db = db_pair
    assert compiled_db.query_scalar(query, {"low": 20.0}) == interpreted_db.query_scalar(
        query, {"low": 20.0}
    )


def test_segmented_linregr_parity():
    from repro.datasets import make_regression, load_regression_table
    from repro.methods import linear_regression

    results = []
    for compiled in (True, False):
        db = Database(num_segments=6, compiled_execution=compiled)
        data = make_regression(500, 8, noise=0.3, seed=23)
        load_regression_table(db, "data", data)
        results.append(linear_regression.train(db, "data"))
    fast, slow = results
    np.testing.assert_allclose(fast.coef, slow.coef, rtol=1e-8)
    np.testing.assert_allclose(fast.std_err, slow.std_err, rtol=1e-6)
    assert fast.num_rows == slow.num_rows
    assert fast.r2 == pytest.approx(slow.r2, rel=1e-8)
