"""Unit tests for Schema, Column and Table storage / segment partitioning."""

import numpy as np
import pytest

from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.errors import CatalogError, ExecutionError, TypeMismatchError


def make_schema():
    return Schema.from_pairs([("id", "integer"), ("x", "double precision[]"), ("y", "double precision")])


class TestSchema:
    def test_from_pairs_and_lookup(self):
        schema = make_schema()
        assert len(schema) == 3
        assert schema.names == ["id", "x", "y"]
        assert schema.index_of("Y") == 2
        assert schema.type_of("x").is_array

    def test_duplicate_column_raises(self):
        with pytest.raises(CatalogError):
            Schema.from_pairs([("a", "integer"), ("A", "text")])

    def test_missing_column_raises(self):
        with pytest.raises(CatalogError):
            make_schema().index_of("missing")

    def test_project_and_rename(self):
        schema = make_schema()
        projected = schema.project(["y", "id"])
        assert projected.names == ["y", "id"]
        renamed = schema.rename({"id": "row_id"})
        assert renamed.names == ["row_id", "x", "y"]

    def test_concat_with_suffix(self):
        left = Schema.from_pairs([("id", "integer")])
        right = Schema.from_pairs([("id", "integer"), ("v", "text")])
        with pytest.raises(CatalogError):
            left.concat(right)
        combined = left.concat(right, on_conflict="suffix")
        assert combined.names == ["id", "id_right", "v"]

    def test_equality_and_hash(self):
        assert make_schema() == make_schema()
        assert hash(make_schema()) == hash(make_schema())

    def test_has_column(self):
        assert make_schema().has_column("ID")
        assert not make_schema().has_column("nope")


class TestTable:
    def test_insert_and_iterate(self):
        table = Table("t", make_schema())
        table.insert([1, [1.0, 2.0], 3.0])
        table.insert([2, [4.0, 5.0], 6.0])
        assert len(table) == 2
        rows = list(table.rows())
        assert rows[0][0] == 1
        assert isinstance(rows[0][1], np.ndarray)

    def test_insert_coerces_and_validates(self):
        table = Table("t", make_schema())
        table.insert(["7", [1, 2], "3.5"])
        row = next(iter(table))
        assert row[0] == 7 and row[2] == 3.5
        with pytest.raises(TypeMismatchError):
            table.insert([1, [1.0, 2.0]])  # wrong arity

    def test_round_robin_distribution_is_balanced(self):
        table = Table("t", make_schema(), num_segments=4)
        table.insert_many([(i, [0.0], float(i)) for i in range(100)])
        sizes = table.segment_sizes()
        assert sum(sizes) == 100
        assert max(sizes) - min(sizes) <= 1

    def test_hash_distribution_is_deterministic_and_collocated(self):
        table_a = Table("a", make_schema(), num_segments=4, distributed_by="id")
        table_b = Table("b", make_schema(), num_segments=4, distributed_by="id")
        for i in range(50):
            table_a.insert([i, [0.0], 0.0])
            table_b.insert([i, [0.0], 0.0])
        assert table_a.segment_sizes() == table_b.segment_sizes()
        # Same key always lands on the same segment.
        for segment in range(4):
            ids_a = {row[0] for row in table_a.segment_rows(segment)}
            ids_b = {row[0] for row in table_b.segment_rows(segment)}
            assert ids_a == ids_b

    def test_invalid_distribution_column_raises(self):
        with pytest.raises(CatalogError):
            Table("t", make_schema(), num_segments=2, distributed_by="missing")

    def test_zero_segments_raises(self):
        with pytest.raises(ExecutionError):
            Table("t", make_schema(), num_segments=0)

    def test_truncate_and_replace(self):
        table = Table("t", make_schema(), num_segments=2)
        table.insert_many([(i, [0.0], float(i)) for i in range(10)])
        table.truncate()
        assert len(table) == 0
        count = table.replace_rows([(1, [1.0], 1.0)])
        assert count == 1 and len(table) == 1

    def test_delete_where(self):
        table = Table("t", make_schema(), num_segments=2)
        table.insert_many([(i, [0.0], float(i)) for i in range(10)])
        deleted = table.delete_where(lambda row: row["y"] >= 5.0)
        assert deleted == 5
        assert len(table) == 5

    def test_redistribute_preserves_rows(self):
        table = Table("t", make_schema(), num_segments=1)
        table.insert_many([(i, [0.0], float(i)) for i in range(20)])
        table.redistribute(5)
        assert table.num_segments == 5
        assert len(table) == 20
        assert sorted(row[0] for row in table.rows()) == list(range(20))

    def test_column_values_and_to_dicts(self):
        table = Table("t", make_schema())
        table.insert_many([(1, [0.0], 10.0), (2, [0.0], 20.0)])
        assert table.column_values("y") == [10.0, 20.0]
        assert table.to_dicts()[0]["id"] == 1
