"""Integration-style tests for SELECT execution against the engine."""

import numpy as np
import pytest

from repro import Database
from repro.errors import CatalogError, ExecutionError


class TestBasicSelect:
    def test_select_constant_without_from(self, db):
        assert db.query_scalar("SELECT 1 + 1") == 2

    def test_projection_and_alias(self, numbers_db):
        rows = numbers_db.query_dicts("SELECT id, value * 2 AS doubled FROM t WHERE id = 2")
        assert rows == [{"id": 2, "doubled": 4.0}]

    def test_star_expansion(self, numbers_db):
        result = numbers_db.execute("SELECT * FROM t WHERE id = 1")
        assert result.columns == ["id", "grp", "value"]

    def test_qualified_star(self, numbers_db):
        result = numbers_db.execute("SELECT t.* FROM t WHERE id = 1")
        assert result.columns == ["id", "grp", "value"]

    def test_where_filters_and_null_excluded(self, numbers_db):
        rows = numbers_db.execute("SELECT id FROM t WHERE value > 2").column("id")
        assert rows == [3, 4, 6]

    def test_order_by_asc_desc_and_nulls(self, numbers_db):
        values = numbers_db.execute("SELECT value FROM t ORDER BY value DESC").column("value")
        assert values[0] == 6.0
        assert values[-1] is None  # NULLs last by default
        values = numbers_db.execute("SELECT value FROM t ORDER BY value NULLS FIRST").column("value")
        assert values[0] is None

    def test_order_by_ordinal_and_alias(self, numbers_db):
        rows = numbers_db.execute("SELECT id AS row_id FROM t ORDER BY 1 DESC LIMIT 2").column("row_id")
        assert rows == [6, 5]
        rows = numbers_db.execute("SELECT id AS row_id FROM t ORDER BY row_id LIMIT 2").column("row_id")
        assert rows == [1, 2]

    def test_limit_offset(self, numbers_db):
        rows = numbers_db.execute("SELECT id FROM t ORDER BY id LIMIT 2 OFFSET 3").column("id")
        assert rows == [4, 5]

    def test_distinct(self, numbers_db):
        groups = numbers_db.execute("SELECT DISTINCT grp FROM t ORDER BY grp").column("grp")
        assert groups == ["a", "b", "c"]

    def test_case_and_functions_in_projection(self, numbers_db):
        rows = numbers_db.query_dicts(
            "SELECT id, CASE WHEN value >= 3 THEN upper(grp) ELSE grp END AS label "
            "FROM t WHERE value IS NOT NULL ORDER BY id"
        )
        assert rows[0]["label"] == "a"
        assert rows[-1]["label"] == "C"

    def test_missing_table_raises(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM nope")

    def test_unknown_column_raises(self, numbers_db):
        with pytest.raises(ExecutionError):
            numbers_db.execute("SELECT wrong_column FROM t")


class TestAggregation:
    def test_global_aggregates(self, numbers_db):
        row = numbers_db.query_dicts(
            "SELECT count(*) AS n, count(value) AS non_null, sum(value) AS total, "
            "avg(value) AS mean, min(value) AS lo, max(value) AS hi FROM t"
        )[0]
        assert row["n"] == 6 and row["non_null"] == 5
        assert row["total"] == 16.0
        assert row["mean"] == pytest.approx(3.2)
        assert (row["lo"], row["hi"]) == (1.0, 6.0)

    def test_group_by_with_having_and_order(self, numbers_db):
        rows = numbers_db.query_dicts(
            "SELECT grp, count(*) AS n, avg(value) AS mean FROM t "
            "GROUP BY grp HAVING count(*) > 1 ORDER BY grp"
        )
        assert [row["grp"] for row in rows] == ["a", "b"]
        assert rows[1]["n"] == 3
        assert rows[1]["mean"] == pytest.approx(3.5)  # NULL excluded from avg

    def test_group_by_expression(self, numbers_db):
        rows = numbers_db.query_dicts(
            "SELECT CASE WHEN value > 3 THEN 'big' ELSE 'small' END AS bucket, count(*) AS n "
            "FROM t WHERE value IS NOT NULL "
            "GROUP BY CASE WHEN value > 3 THEN 'big' ELSE 'small' END ORDER BY bucket"
        )
        assert {row["bucket"]: row["n"] for row in rows} == {"big": 2, "small": 3}

    def test_count_distinct(self, numbers_db):
        assert numbers_db.query_scalar("SELECT count(DISTINCT grp) FROM t") == 3

    def test_aggregate_of_expression(self, numbers_db):
        assert numbers_db.query_scalar("SELECT sum(value * value) FROM t") == pytest.approx(66.0)

    def test_empty_group_returns_zero_count(self, numbers_db):
        assert numbers_db.query_scalar("SELECT count(*) FROM t WHERE id > 100") == 0
        assert numbers_db.query_scalar("SELECT sum(value) FROM t WHERE id > 100") is None

    def test_aggregates_parallel_match_serial(self):
        serial_db = Database(num_segments=1)
        parallel_db = Database(num_segments=8)
        for database in (serial_db, parallel_db):
            database.create_table("n", [("v", "double precision")])
            database.load_rows("n", [(float(i),) for i in range(1, 201)])
        for query in (
            "SELECT sum(v) FROM n",
            "SELECT avg(v) FROM n",
            "SELECT stddev(v) FROM n",
            "SELECT count(*) FROM n",
        ):
            assert parallel_db.query_scalar(query) == pytest.approx(serial_db.query_scalar(query))

    def test_string_agg_and_array_agg(self, numbers_db):
        result = numbers_db.query_scalar("SELECT array_agg(grp) FROM t WHERE id <= 2")
        assert result == ["a", "a"]


class TestJoinsAndSubqueries:
    def test_inner_join(self, numbers_db):
        numbers_db.create_table("names", [("grp", "text"), ("label", "text")])
        numbers_db.load_rows("names", [("a", "alpha"), ("b", "beta")])
        rows = numbers_db.query_dicts(
            "SELECT t.id, names.label FROM t JOIN names ON t.grp = names.grp ORDER BY t.id"
        )
        assert len(rows) == 5  # group c has no match
        assert rows[0]["label"] == "alpha"

    def test_left_join_produces_nulls(self, numbers_db):
        numbers_db.create_table("names", [("grp", "text"), ("label", "text")])
        numbers_db.load_rows("names", [("a", "alpha")])
        rows = numbers_db.query_dicts(
            "SELECT t.id, names.label FROM t LEFT JOIN names ON t.grp = names.grp ORDER BY t.id"
        )
        assert len(rows) == 6
        assert rows[-1]["label"] is None

    def test_cross_join_cardinality(self, numbers_db):
        count = numbers_db.query_scalar(
            "SELECT count(*) FROM t CROSS JOIN generate_series(1, 3) g(i)"
        )
        assert count == 18

    def test_comma_join_with_where(self, numbers_db):
        rows = numbers_db.query_dicts(
            "SELECT a.id AS left_id, b.id AS right_id FROM t a, t b "
            "WHERE a.id + 1 = b.id AND a.id <= 2 ORDER BY a.id"
        )
        assert rows == [{"left_id": 1, "right_id": 2}, {"left_id": 2, "right_id": 3}]

    def test_subquery_in_from(self, numbers_db):
        value = numbers_db.query_scalar(
            "SELECT max(s.doubled) FROM (SELECT value * 2 AS doubled FROM t) s"
        )
        assert value == 12.0

    def test_generate_series(self, db):
        values = db.execute("SELECT i FROM generate_series(2, 10, 2) g(i)").column("i")
        assert values == [2, 4, 6, 8, 10]

    def test_union_and_union_all(self, db):
        assert len(db.execute("SELECT 1 UNION SELECT 1").rows) == 1
        assert len(db.execute("SELECT 1 UNION ALL SELECT 1").rows) == 2


class TestWindowFunctions:
    def test_running_sum(self, db):
        rows = db.query_dicts(
            "SELECT i, sum(i) OVER (ORDER BY i) AS running FROM generate_series(1, 5) g(i)"
        )
        assert [row["running"] for row in rows] == [1, 3, 6, 10, 15]

    def test_partitioned_window(self, numbers_db):
        rows = numbers_db.query_dicts(
            "SELECT id, grp, count(*) OVER (PARTITION BY grp) AS group_size FROM t ORDER BY id"
        )
        sizes = {row["id"]: row["group_size"] for row in rows}
        assert sizes[1] == 2 and sizes[3] == 3 and sizes[6] == 1

    def test_row_number_and_rank(self, numbers_db):
        rows = numbers_db.query_dicts(
            "SELECT id, row_number() OVER (ORDER BY id DESC) AS rn FROM t ORDER BY id"
        )
        assert rows[0]["rn"] == 6 and rows[-1]["rn"] == 1

    def test_lag_carries_state_across_rows(self, db):
        rows = db.query_dicts(
            "SELECT i, lag(i) OVER (ORDER BY i) AS previous FROM generate_series(1, 4) g(i)"
        )
        assert [row["previous"] for row in rows] == [None, 1, 2, 3]

    def test_whole_partition_aggregate_without_order(self, numbers_db):
        rows = numbers_db.query_dicts(
            "SELECT id, sum(value) OVER (PARTITION BY grp) AS total FROM t WHERE value IS NOT NULL ORDER BY id"
        )
        assert rows[0]["total"] == pytest.approx(3.0)
