"""The fault-injection registry: determinism, rates, bounds, bookkeeping.

Everything the chaos harness builds on reduces to one property: probe *n*
at a site fires (or not) as a pure function of ``(seed, site, n)`` —
independent of thread scheduling, other sites, and ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import threading

from repro.engine.faults import (
    CLIENT_STALL,
    WORKER_CRASH,
    WORKER_HANG,
    FaultInjector,
)


def _firing_pattern(seed: int, site: str, kind: str, rate: float, probes: int):
    injector = FaultInjector(seed).arm(site, kind, rate=rate)
    return [injector.probe(site) is not None for _ in range(probes)]


def test_same_seed_same_pattern():
    a = _firing_pattern(7, "parallel.task", WORKER_CRASH, 0.3, 200)
    b = _firing_pattern(7, "parallel.task", WORKER_CRASH, 0.3, 200)
    assert a == b
    assert any(a) and not all(a)  # 0.3 over 200 probes fires some, not all


def test_different_seeds_differ():
    a = _firing_pattern(1, "parallel.task", WORKER_CRASH, 0.3, 200)
    b = _firing_pattern(2, "parallel.task", WORKER_CRASH, 0.3, 200)
    assert a != b


def test_rate_zero_and_one():
    assert not any(_firing_pattern(5, "s", WORKER_CRASH, 0.0, 50))
    assert all(_firing_pattern(5, "s", WORKER_CRASH, 1.0, 50))


def test_rate_roughly_respected():
    fires = sum(_firing_pattern(11, "s", WORKER_CRASH, 0.25, 2000))
    assert 350 < fires < 650  # 500 expected; generous deterministic bounds


def test_max_fires_bounds_total():
    injector = FaultInjector(3).arm("s", WORKER_CRASH, max_fires=2)
    fired = [injector.probe("s") for _ in range(10)]
    assert sum(1 for f in fired if f is not None) == 2
    # The first two probes fire (rate 1.0), the rest are exhausted.
    assert fired[0] is not None and fired[1] is not None
    assert all(f is None for f in fired[2:])


def test_unarmed_site_is_silent_and_free():
    injector = FaultInjector(0).arm("armed", WORKER_CRASH)
    assert injector.probe("other") is None
    # Probing an unarmed site does not advance any counter.
    assert injector.probes("other") == 0


def test_sites_are_independent():
    """A site's pattern does not depend on how often other sites probed."""
    solo = FaultInjector(9).arm("a", WORKER_CRASH, rate=0.4)
    solo_pattern = [solo.probe("a") is not None for _ in range(100)]

    mixed = FaultInjector(9).arm("a", WORKER_CRASH, rate=0.4).arm("b", WORKER_HANG)
    mixed_pattern = []
    for _ in range(100):
        mixed.probe("b")
        mixed_pattern.append(mixed.probe("a") is not None)
    assert solo_pattern == mixed_pattern


def test_first_matching_spec_wins():
    injector = (
        FaultInjector(4)
        .arm("s", WORKER_CRASH, max_fires=1)
        .arm("s", WORKER_HANG)
    )
    first = injector.probe("s")
    second = injector.probe("s")
    assert first is not None and first.kind == WORKER_CRASH
    assert second is not None and second.kind == WORKER_HANG  # crash exhausted


def test_delay_defaults_by_kind():
    injector = FaultInjector(0).arm("s", WORKER_HANG).arm("t", CLIENT_STALL)
    assert injector.probe("s").delay == 3600.0
    assert injector.probe("t").delay == 0.1


def test_history_and_counters():
    injector = FaultInjector(2).arm("s", WORKER_CRASH, max_fires=3)
    for _ in range(5):
        injector.probe("s")
    assert injector.fired("s", WORKER_CRASH) == 3
    assert injector.probes("s") == 5
    history = injector.history()
    assert [f.sequence for f in history] == [0, 1, 2]
    injector.reset()
    assert injector.fired() == 0 and injector.probes("s") == 0
    # Arms survive a reset and replay the identical pattern.
    assert injector.probe("s") is not None


def test_disarm():
    injector = FaultInjector(0).arm("s", WORKER_CRASH).arm("s", WORKER_HANG)
    injector.disarm("s", WORKER_CRASH)
    assert injector.probe("s").kind == WORKER_HANG
    injector.disarm("s")
    assert injector.probe("s") is None


def test_thread_safety_counts_every_probe():
    injector = FaultInjector(6).arm("s", WORKER_CRASH, rate=0.5)
    fires = []

    def worker():
        local = sum(1 for _ in range(500) if injector.probe("s") is not None)
        fires.append(local)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert injector.probes("s") == 2000
    assert injector.fired("s") == sum(fires)
