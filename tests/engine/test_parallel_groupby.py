"""Two-phase parallel GROUP BY: parity, planner heuristics, grouped stats.

The grouped worker-pool dispatch (``Executor._parallel_grouped`` +
``repro.engine.parallel._grouped_segment_task``) must be observationally
identical to both in-process tiers over a corpus of grouped queries spanning
random, NULL-heavy, single-group and high-cardinality key distributions —
and the planner must keep statements in-process whenever shipping them could
change results (user functions, DISTINCT, non-mergeable or non-picklable
aggregates) or could not pay for the round trip (small fan-outs, extreme
group cardinality).
"""

from __future__ import annotations

import pytest

from repro import Database

from test_compiled_parity import _assert_results_equal


ROWS = 240


def _populate(db: Database) -> None:
    db.create_table(
        "g",
        [
            ("id", "integer"),
            ("grp", "text"),            # random low-cardinality split (3 values + NULLs)
            ("sparse", "text"),         # NULL-heavy split (~70% NULL keys)
            ("konst", "text"),          # single-group split
            ("hc", "integer"),          # high-cardinality split (~ROWS/2 groups)
            ("a", "double precision"),
            ("b", "double precision"),
        ],
        distributed_by="id",
    )
    rows = []
    for i in range(1, ROWS + 1):
        grp = None if i % 19 == 0 else "xyz"[i % 3]
        sparse = f"s{i % 4}" if i % 10 < 3 else None
        a = None if i % 7 == 0 else float(i) * 1.25
        b = None if i % 5 == 0 else float(i % 11) - 4.0
        rows.append((i, grp, sparse, "k", i % (ROWS // 2), a, b))
    db.load_rows("g", rows)


def _force_pool(db: Database) -> Database:
    db.worker_pool.min_dispatch_rows = 0  # dispatch everything, skip heuristics
    return db


@pytest.fixture(scope="module")
def tiers():
    """(parallel, compiled-serial, interpreted-serial) databases, same data."""
    databases = [
        _force_pool(Database(num_segments=4, parallel=2)),
        Database(num_segments=4),
        Database(num_segments=4, compiled_execution=False),
    ]
    for db in databases:
        _populate(db)
    yield databases
    databases[0].close()


GROUPED_CORPUS = [
    # Random low-cardinality split, builtin aggregates, NULL group keys.
    "SELECT grp, count(*), sum(a), avg(b), min(a), max(a) FROM g GROUP BY grp ORDER BY grp",
    "SELECT grp, var_samp(a), stddev(a), stddev_pop(b) FROM g GROUP BY grp ORDER BY grp",
    "SELECT grp, count(a), count(b) FROM g GROUP BY grp ORDER BY grp",
    # NULL-heavy split.
    "SELECT sparse, count(*), sum(b) FROM g GROUP BY sparse ORDER BY sparse",
    # Single-group split.
    "SELECT konst, count(*), sum(a), avg(a) FROM g GROUP BY konst",
    # High-cardinality split (group count ~ half the row count).
    "SELECT hc, count(*), max(a) FROM g GROUP BY hc ORDER BY hc",
    # Expression keys, multi-column keys, builtin scalar functions in keys.
    "SELECT id % 5, count(*), sum(a) FROM g GROUP BY id % 5 ORDER BY 1",
    "SELECT grp, id % 2, count(*) FROM g GROUP BY grp, id % 2 ORDER BY grp, 2",
    "SELECT upper(grp), count(*) FROM g GROUP BY upper(grp) ORDER BY 1",
    "SELECT abs(b), count(*) FROM g GROUP BY abs(b) ORDER BY 1",
    # Expression aggregate arguments, HAVING, aggregate-only ORDER BY.
    "SELECT grp, sum(a + b), avg(a * 2) FROM g GROUP BY grp ORDER BY grp",
    "SELECT grp, count(*) FROM g GROUP BY grp HAVING count(*) > 20 ORDER BY grp",
    "SELECT grp, sum(a) FROM g GROUP BY grp ORDER BY sum(a) DESC",
    # Order-sensitive aggregates: merged in segment order on every tier.
    "SELECT grp, array_agg(id) FROM g GROUP BY grp ORDER BY grp",
    "SELECT grp, string_agg(sparse, ',') FROM g GROUP BY grp ORDER BY grp",
    # WHERE + GROUP BY (filtered relation keeps segment provenance).
    "SELECT grp, count(*), sum(a) FROM g WHERE id > 40 GROUP BY grp ORDER BY grp",
    # Bool aggregates over expressions.
    "SELECT grp, bool_and(a > 0), bool_or(b > 2) FROM g GROUP BY grp ORDER BY grp",
]


@pytest.mark.parametrize("query", GROUPED_CORPUS)
def test_grouped_parallel_matches_both_serial_tiers(tiers, query):
    parallel_db, compiled_db, interpreted_db = tiers
    expected = compiled_db.execute(query)
    _assert_results_equal(expected, interpreted_db.execute(query), query)
    _assert_results_equal(parallel_db.execute(query), expected, query)


def test_grouped_dispatch_actually_engages(tiers):
    parallel_db, _, _ = tiers
    stats = parallel_db.execute("SELECT grp, count(*), sum(a) FROM g GROUP BY grp").stats
    assert len(stats.aggregate_timings) == 2
    for timings in stats.aggregate_timings:
        assert timings.executed_parallel
        assert timings.grouped_dispatch  # the two-phase path, not per-group fan-outs
        assert timings.num_groups == 4  # x, y, z and the NULL group
        assert timings.num_workers == 2
        assert len(timings.per_segment_seconds) == 4
    assert stats.executed_parallel
    assert stats.measured_parallel_seconds is not None


def test_grouped_statements_report_simulated_parallel_seconds(tiers):
    # The satellite fix: grouped statements used to contribute nothing to
    # aggregate_timings, so simulated vs measured numbers were incomparable.
    _, compiled_db, _ = tiers
    stats = compiled_db.execute("SELECT grp, count(*), sum(a) FROM g GROUP BY grp").stats
    assert len(stats.aggregate_timings) == 2
    for timings in stats.aggregate_timings:
        assert not timings.executed_parallel
        assert timings.num_groups == 4
        assert sum(timings.rows_per_segment) > 0
    assert 0.0 <= stats.simulated_parallel_seconds <= stats.total_seconds + 1e-6


def test_ungrouped_aggregates_keep_num_groups_zero(tiers):
    _, compiled_db, _ = tiers
    stats = compiled_db.execute("SELECT sum(a) FROM g").stats
    assert stats.aggregate_timings[0].num_groups == 0


# ---------------------------------------------------------------------------
# Planner guards: what stays in-process, and why.
# ---------------------------------------------------------------------------


def _fresh_parallel(min_dispatch_rows=None) -> Database:
    db = Database(num_segments=4, parallel=2)
    if min_dispatch_rows is not None:
        db.worker_pool.min_dispatch_rows = min_dispatch_rows
    _populate(db)
    return db


def test_high_cardinality_stays_in_process_under_default_floor():
    db = _fresh_parallel(min_dispatch_rows=100)
    # Every row its own group: merging O(groups) = O(rows) states on the
    # coordinator would dominate, so the planner keeps the statement local.
    result = db.execute("SELECT id, count(*) FROM g GROUP BY id")
    assert len(result.rows) == ROWS
    assert not result.stats.executed_parallel
    assert not any(t.grouped_dispatch for t in result.stats.aggregate_timings)
    # Low cardinality over the same data does dispatch.
    result = db.execute("SELECT grp, count(*) FROM g GROUP BY grp")
    assert result.stats.executed_parallel
    assert all(t.grouped_dispatch for t in result.stats.aggregate_timings)
    db.close()


def test_small_grouped_fanouts_stay_in_process():
    db = _fresh_parallel()  # default floor (512) above ROWS
    result = db.execute("SELECT grp, count(*) FROM g GROUP BY grp")
    assert not result.stats.executed_parallel
    assert not db.worker_pool.started
    db.close()


def test_user_scalar_function_in_key_falls_back():
    db = _fresh_parallel(min_dispatch_rows=0)
    db.create_function("bucket", lambda x: int(x) % 3, return_type="integer")
    result = db.execute("SELECT bucket(id), count(*) FROM g GROUP BY bucket(id) ORDER BY 1")
    assert [row[0] for row in result.rows] == [0, 1, 2]
    # The statement must not take the grouped dispatch (a worker would resolve
    # a different `bucket`); per-group fan-outs of the builtin count are fine.
    assert not any(t.grouped_dispatch for t in result.stats.aggregate_timings)
    db.close()


def test_shadowed_builtin_function_in_key_falls_back():
    db = _fresh_parallel(min_dispatch_rows=0)
    # Same name as the builtin, different semantics: shipping it would let a
    # worker silently resolve the genuine builtin instead.
    db.create_function("abs", lambda x: 0.0)
    result = db.execute("SELECT abs(b), count(*) FROM g GROUP BY abs(b)")
    assert [row[0] for row in result.rows] == [0.0, None]  # strict: abs(NULL) is NULL
    assert not any(t.grouped_dispatch for t in result.stats.aggregate_timings)
    db.close()


def test_per_group_pool_fanouts_surface_in_grouped_timings():
    # When grouped dispatch declines but individual groups still fan out to
    # the pool, the accumulated statement-level timings must say so.
    db = _fresh_parallel(min_dispatch_rows=0)
    db.create_function("bucket", lambda x: int(x) % 3, return_type="integer")
    result = db.execute("SELECT bucket(id), sum(a) FROM g GROUP BY bucket(id)")
    timings = result.stats.aggregate_timings[0]
    assert timings.executed_parallel and not timings.grouped_dispatch
    assert timings.num_groups == 3
    assert timings.num_workers == 2
    db.close()


def test_unshippable_aggregate_keeps_statement_in_process():
    db = _fresh_parallel(min_dispatch_rows=0)
    db.create_aggregate(
        "lambda_sum",
        transition=lambda state, value: state + value,
        merge=lambda a, b: a + b,
        initial_state=0,
    )
    result = db.execute("SELECT grp, lambda_sum(id) FROM g GROUP BY grp ORDER BY grp")
    serial = Database(num_segments=4)
    _populate(serial)
    serial.create_aggregate(
        "lambda_sum",
        transition=lambda state, value: state + value,
        merge=lambda a, b: a + b,
        initial_state=0,
    )
    expected = serial.execute("SELECT grp, lambda_sum(id) FROM g GROUP BY grp ORDER BY grp")
    _assert_results_equal(result, expected, "lambda_sum grouped")
    assert not result.stats.executed_parallel
    db.close()


def test_distinct_aggregate_keeps_statement_in_process():
    db = _fresh_parallel(min_dispatch_rows=0)
    result = db.execute("SELECT grp, count(DISTINCT sparse) FROM g GROUP BY grp ORDER BY grp")
    assert not any(t.grouped_dispatch for t in result.stats.aggregate_timings)
    db.close()


# ---------------------------------------------------------------------------
# Formerly-fallback UDA kernels on the pool (the acceptance criterion).
# ---------------------------------------------------------------------------


def _uda_pair():
    serial = Database(num_segments=4)
    parallel = _force_pool(Database(num_segments=4, parallel=2))
    for db in (serial, parallel):
        db.create_table("v", [("x", "double precision"), ("grp", "text")], distributed_by="x")
        db.load_rows("v", [(float(i % 37) * 1.7, "ab"[i % 2]) for i in range(300)])
    return serial, parallel


def test_quantile_reservoir_runs_on_pool_with_identical_result():
    from repro.methods.quantiles import install_quantile_aggregate

    serial, parallel = _uda_pair()
    for db in (serial, parallel):
        install_quantile_aggregate(db, reservoir_size=64)
    expected = serial.query_scalar("SELECT quantile_reservoir(x) FROM v")
    result = parallel.query_scalar("SELECT quantile_reservoir(x) FROM v")
    assert parallel.last_stats.aggregate_timings[0].executed_parallel
    assert result == expected  # byte-identical reservoirs, not just close
    parallel.close()


def test_fm_sketch_runs_on_pool_with_identical_result():
    from repro.methods.sketches import install_fm

    serial, parallel = _uda_pair()
    for db in (serial, parallel):
        install_fm(db, num_maps=16)
    expected = serial.query_scalar("SELECT fmsketch(x) FROM v")
    result = parallel.query_scalar("SELECT fmsketch(x) FROM v")
    assert parallel.last_stats.aggregate_timings[0].executed_parallel
    assert (result.bitmaps == expected.bitmaps).all()
    parallel.close()


def test_countmin_sketch_runs_on_pool_grouped_and_ungrouped():
    from repro.methods.sketches import install_countmin

    serial, parallel = _uda_pair()
    for db in (serial, parallel):
        install_countmin(db, eps=0.05, delta=0.05)
    expected = serial.query_scalar("SELECT cmsketch(x) FROM v")
    result = parallel.query_scalar("SELECT cmsketch(x) FROM v")
    assert parallel.last_stats.aggregate_timings[0].executed_parallel
    assert (result.counters == expected.counters).all() and result.total == expected.total
    # The same kernel also rides the grouped dispatch.
    expected_rows = serial.execute("SELECT grp, cmsketch(x) FROM v GROUP BY grp ORDER BY grp").rows
    result_rows = parallel.execute("SELECT grp, cmsketch(x) FROM v GROUP BY grp ORDER BY grp").rows
    assert parallel.last_stats.aggregate_timings[0].executed_parallel
    assert parallel.last_stats.aggregate_timings[0].num_groups == 2
    for (grp_a, sketch_a), (grp_b, sketch_b) in zip(result_rows, expected_rows):
        assert grp_a == grp_b
        assert (sketch_a.counters == sketch_b.counters).all()
    parallel.close()


def test_igd_epoch_runs_on_pool_with_identical_model():
    import numpy as np

    from repro.convex.igd import install_igd
    from repro.convex.objectives import LeastSquaresObjective
    from repro.datasets import make_regression, load_regression_table

    data = make_regression(300, 4, noise=0.2, seed=17)
    models = []
    for workers in (0, 2):
        db = Database(num_segments=4, parallel=workers)
        if workers:
            _force_pool(db)
        load_regression_table(db, "d", data)
        install_igd(db, LeastSquaresObjective(4))
        record = db.execute("SELECT igd_epoch(%(m)s, 0.01, y, x) FROM d", {"m": None})
        if workers:
            assert record.stats.aggregate_timings[0].executed_parallel
            db.close()
        models.append(np.asarray(record.rows[0][0]["model"]))
    np.testing.assert_array_equal(models[0], models[1])


def test_cg_matvec_runs_on_pool_with_identical_solution():
    import numpy as np

    from repro.support.conjugate_gradient import conjugate_gradient_sql

    rng = np.random.default_rng(5)
    basis = rng.normal(size=(6, 6))
    matrix = basis @ basis.T + 6 * np.eye(6)
    rhs = rng.normal(size=6)
    solutions = []
    for workers in (0, 2):
        db = Database(num_segments=3, parallel=workers)
        if workers:
            _force_pool(db)
        db.create_table("m", [("id", "integer"), ("row", "double precision[]")])
        db.load_rows("m", [(i, list(map(float, matrix[i]))) for i in range(6)])
        result = conjugate_gradient_sql(db, "m", "row", rhs, tolerance=1e-10)
        solutions.append(result.solution)
        if workers:
            db.close()
    np.testing.assert_allclose(solutions[0], solutions[1], rtol=1e-12)
