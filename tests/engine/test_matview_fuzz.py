"""Randomized materialized-view parity fuzzing, mirroring the columnar fuzz.

Every scenario builds a database (seed-varied segment count and storage
configuration), defines a handful of random materialized views — grouped and
ungrouped, with random WHERE / HAVING clauses over the fold-exact aggregate
pool (count / sum / avg / min / max) — and runs a seeded random DML script.
After *every* statement, each view's finalized contents must be
byte-identical (``repr``-equal: type-exact, NaN-faithful) to re-running its
defining query from scratch, whatever mix of incremental delta folds and
staleness-triggered recomputes got the view there.

The variance family is excluded by design: its batch kernel is documented to
agree with the Welford fold only to floating-point round-off, so it cannot
promise byte-identical reads (see docs/materialized-views.md).

Scenarios are seeded and fully reproducible: a failure names its seed.
"""

from __future__ import annotations

import random

import pytest

from repro import Database


SEEDS = list(range(12))
STATEMENTS = 18  # DML statements per scenario; a view check follows each one

_LABELS = ["alpha", "beta", "gamma", None]


# ---------------------------------------------------------------------------
# Random scenario generation
# ---------------------------------------------------------------------------


def _random_value(rng: random.Random, column: str):
    if rng.random() < 0.15:
        return "NULL"
    if column == "k":
        return str(rng.randrange(0, 6))
    if column == "a":
        return str(rng.randrange(-50, 51))
    if column == "b":
        # Integer-valued doubles keep float64 sums exact; a sprinkle of
        # fractional values still exercises identical fold ordering.
        if rng.random() < 0.5:
            return f"{rng.randrange(-30, 31)}.0"
        return f"{rng.randrange(-300, 301) / 4}"
    label = rng.choice(_LABELS)
    return "NULL" if label is None else f"'{label}'"


def _random_row(rng: random.Random) -> str:
    return "(" + ", ".join(_random_value(rng, c) for c in ("k", "a", "b", "s")) + ")"


def _random_aggregates(rng: random.Random) -> list:
    pool = [
        "count(*)",
        "count(a)",
        "sum(a)",
        "sum(b)",
        "avg(a)",
        "avg(b)",
        "min(a)",
        "max(b)",
        "min(s)",
        "max(s)",
    ]
    count = rng.randrange(2, 5)
    return [f"{agg} AS agg{i}" for i, agg in enumerate(rng.sample(pool, count))]


def _random_where(rng: random.Random):
    roll = rng.random()
    if roll < 0.4:
        return None
    if roll < 0.55:
        return f"a > {rng.randrange(-30, 10)}"
    if roll < 0.70:
        return "b IS NOT NULL"
    if roll < 0.85:
        return f"k < {rng.randrange(2, 6)}"
    return "s = 'alpha'"


def _random_view_sql(rng: random.Random) -> str:
    aggregates = _random_aggregates(rng)
    where = _random_where(rng)
    grouped = rng.random() < 0.7
    items = (["k"] if grouped else []) + aggregates
    sql = f"SELECT {', '.join(items)} FROM t"
    if where is not None:
        sql += f" WHERE {where}"
    if grouped:
        sql += " GROUP BY k"
        if rng.random() < 0.3:
            sql += " HAVING count(*) > 1"
    return sql


def _random_dml(rng: random.Random) -> str:
    roll = rng.random()
    if roll < 0.55:
        rows = ", ".join(_random_row(rng) for _ in range(rng.randrange(1, 9)))
        return f"INSERT INTO t VALUES {rows}"
    if roll < 0.75:
        column = rng.choice(("a", "b"))
        value = _random_value(rng, column)
        if rng.random() < 0.5:
            return f"UPDATE t SET {column} = {value} WHERE k = {rng.randrange(0, 6)}"
        return f"UPDATE t SET {column} = {value} WHERE a > {rng.randrange(0, 40)}"
    if rng.random() < 0.5:
        return f"DELETE FROM t WHERE k = {rng.randrange(0, 6)}"
    return f"DELETE FROM t WHERE a < {rng.randrange(-40, 0)}"


# ---------------------------------------------------------------------------
# The scenario
# ---------------------------------------------------------------------------


def _run_scenario(seed: int) -> int:
    rng = random.Random(f"matview-fuzz:{seed}")
    db = Database(
        num_segments=rng.choice((1, 2, 3)),
        columnar_storage=rng.random() < 0.8,
    )
    db.execute("CREATE TABLE t (k INTEGER, a INTEGER, b DOUBLE PRECISION, s TEXT)")
    seed_rows = ", ".join(_random_row(rng) for _ in range(rng.randrange(5, 25)))
    db.execute(f"INSERT INTO t VALUES {seed_rows}")

    views = {}
    for index in range(rng.randrange(2, 4)):
        name = f"mv{index}"
        sql = _random_view_sql(rng)
        db.execute(f"CREATE MATERIALIZED VIEW {name} AS {sql}")
        views[name] = sql

    deltas = 0
    for step in range(STATEMENTS):
        sql = _random_dml(rng)
        result = db.execute(sql)
        if result.stats is not None:
            deltas += result.stats.matview_deltas_applied
        for name, defining in views.items():
            view_rows = db.execute(f"SELECT * FROM {name}").rows
            direct_rows = db.execute(defining).rows
            assert repr(view_rows) == repr(direct_rows), (
                f"seed {seed} step {step}: view {name} diverged after {sql!r}\n"
                f"  defining: {defining}\n"
                f"  view:   {view_rows!r}\n"
                f"  direct: {direct_rows!r}"
            )
    return deltas


@pytest.mark.parametrize("seed", SEEDS)
def test_matview_fuzz_parity(seed):
    _run_scenario(seed)


def test_fuzz_exercises_incremental_path():
    """The scenario pool actually hits delta folds (not just recomputes)."""
    total = sum(_run_scenario(seed) for seed in SEEDS[:4])
    assert total > 0


def test_fuzz_is_reproducible():
    assert _run_scenario(3) == _run_scenario(3)
