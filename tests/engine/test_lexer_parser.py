"""Unit tests for the SQL lexer and recursive-descent parser."""

import pytest

from repro.engine.expressions import (
    ArrayLiteral,
    Between,
    BinaryOp,
    CaseExpr,
    Cast,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    Parameter,
    Star,
    Subscript,
    UnaryOp,
    WindowCall,
)
from repro.engine.parser import (
    CreateTableAsStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    InsertStatement,
    Join,
    SelectStatement,
    SubquerySource,
    TableRef,
    UnionStatement,
    UpdateStatement,
    parse_expression,
    parse_script,
    parse_statement,
    tokenize,
)
from repro.errors import SQLSyntaxError


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT x + 1 FROM t")
        kinds = [token.kind for token in tokens]
        assert kinds == ["keyword", "name", "operator", "number", "keyword", "name", "eof"]

    def test_string_literal_with_escape(self):
        tokens = tokenize("SELECT 'it''s'")
        assert tokens[1].kind == "string"
        assert tokens[1].value == "it's"

    def test_quoted_identifier(self):
        tokens = tokenize('SELECT "Weird Name" FROM t')
        assert tokens[1].kind == "name"
        assert tokens[1].value == "Weird Name"

    def test_line_and_block_comments(self):
        tokens = tokenize("SELECT 1 -- comment\n + /* block */ 2")
        values = [token.value for token in tokens if token.kind != "eof"]
        assert values == ["SELECT", "1", "+", "2"]

    def test_numbers(self):
        tokens = tokenize("1 2.5 3e-2 .5")
        assert [token.value for token in tokens[:-1]] == ["1", "2.5", "3e-2", ".5"]

    def test_parameter_token(self):
        tokens = tokenize("SELECT %(state)s")
        assert tokens[1].kind == "parameter"
        assert tokens[1].value == "state"

    def test_two_char_operators(self):
        tokens = tokenize("a >= 1 AND b <> 2 OR c::int || d")
        operators = [t.value for t in tokens if t.kind == "operator"]
        assert ">=" in operators and "<>" in operators and "::" in operators and "||" in operators

    def test_unterminated_string_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT 'oops")

    def test_unexpected_character_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT @foo")


class TestExpressionParsing:
    def test_precedence(self):
        expression = parse_expression("1 + 2 * 3")
        assert isinstance(expression, BinaryOp) and expression.op == "+"
        assert isinstance(expression.right, BinaryOp) and expression.right.op == "*"

    def test_boolean_precedence(self):
        expression = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expression.op == "or"
        assert expression.right.op == "and"

    def test_unary_and_not(self):
        expression = parse_expression("NOT -x > 1")
        assert isinstance(expression, UnaryOp) and expression.op == "not"

    def test_case_expression(self):
        expression = parse_expression("CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END")
        assert isinstance(expression, CaseExpr)
        assert len(expression.whens) == 1

    def test_simple_case_with_operand(self):
        expression = parse_expression("CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' END")
        assert isinstance(expression, CaseExpr)
        assert len(expression.whens) == 2

    def test_cast_syntaxes(self):
        assert isinstance(parse_expression("CAST(x AS double precision)"), Cast)
        assert isinstance(parse_expression("x::integer"), Cast)
        cast = parse_expression("x::double precision[]")
        assert cast.type_name == "double precision[]"

    def test_array_literal_and_subscript(self):
        array = parse_expression("ARRAY[1, 2, 3]")
        assert isinstance(array, ArrayLiteral) and len(array.items) == 3
        subscript = parse_expression("x[2]")
        assert isinstance(subscript, Subscript)

    def test_in_between_isnull_like(self):
        assert isinstance(parse_expression("x IN (1, 2)"), InList)
        assert isinstance(parse_expression("x NOT IN (1, 2)"), InList)
        assert isinstance(parse_expression("x BETWEEN 1 AND 2"), Between)
        assert isinstance(parse_expression("x IS NULL"), IsNull)
        assert isinstance(parse_expression("x IS NOT NULL"), IsNull)
        assert parse_expression("name LIKE 'a%'").op == "like"

    def test_function_call_variants(self):
        call = parse_expression("count(*)")
        assert isinstance(call, FunctionCall) and call.star
        call = parse_expression("count(DISTINCT x)")
        assert call.distinct
        call = parse_expression("coalesce(a, b, 0)")
        assert len(call.args) == 3

    def test_window_call(self):
        expression = parse_expression("sum(x) OVER (PARTITION BY g ORDER BY t DESC)")
        assert isinstance(expression, WindowCall)
        assert len(expression.spec.partition_by) == 1
        assert expression.spec.order_by[0][1] is False

    def test_qualified_column_and_star(self):
        expression = parse_expression("t.x")
        assert isinstance(expression, ColumnRef) and expression.qualifier == "t"
        star = parse_expression("t.*")
        assert isinstance(star, Star) and star.qualifier == "t"

    def test_parameter(self):
        assert isinstance(parse_expression("%(coef)s"), Parameter)

    def test_trailing_garbage_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_expression("1 + 2 extra stuff (")


class TestStatementParsing:
    def test_select_clauses(self):
        statement = parse_statement(
            "SELECT g, count(*) AS n FROM t WHERE v > 0 GROUP BY g HAVING count(*) > 1 "
            "ORDER BY n DESC LIMIT 5 OFFSET 2"
        )
        assert isinstance(statement, SelectStatement)
        assert statement.where is not None
        assert len(statement.group_by) == 1
        assert statement.having is not None
        assert statement.limit == 5 and statement.offset == 2
        assert statement.order_by[0].ascending is False

    def test_select_distinct(self):
        assert parse_statement("SELECT DISTINCT x FROM t").distinct

    def test_join_parsing(self):
        statement = parse_statement("SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id")
        join = statement.from_items[0]
        assert isinstance(join, Join) and join.kind == "left"
        assert isinstance(join.left, Join) and join.left.kind == "inner"

    def test_cross_join_and_comma(self):
        statement = parse_statement("SELECT * FROM a, b CROSS JOIN c")
        assert len(statement.from_items) == 2

    def test_subquery_source(self):
        statement = parse_statement("SELECT s.v FROM (SELECT v FROM t) s")
        assert isinstance(statement.from_items[0], SubquerySource)

    def test_generate_series_source(self):
        statement = parse_statement("SELECT i FROM generate_series(1, 10) g(i)")
        source = statement.from_items[0]
        assert source.name == "generate_series"
        assert source.column_names == ["i"]

    def test_union(self):
        statement = parse_statement("SELECT 1 UNION ALL SELECT 2 UNION ALL SELECT 3")
        assert isinstance(statement, UnionStatement)
        assert len(statement.selects) == 3 and statement.all

    def test_create_table(self):
        statement = parse_statement(
            "CREATE TABLE m (id integer, x double precision[], name text) DISTRIBUTED BY (id)"
        )
        assert isinstance(statement, CreateTableStatement)
        assert statement.columns[1].type_name == "double precision[]"
        assert statement.distributed_by == "id"

    def test_create_temp_table_as(self):
        statement = parse_statement("CREATE TEMP TABLE s AS SELECT 1 AS one")
        assert isinstance(statement, CreateTableAsStatement)
        assert statement.temporary

    def test_insert_values_and_select(self):
        statement = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(statement, InsertStatement)
        assert len(statement.values_rows) == 2
        statement = parse_statement("INSERT INTO t SELECT a, b FROM s")
        assert statement.select is not None

    def test_update_delete_drop(self):
        update = parse_statement("UPDATE t SET a = a + 1, b = 2 WHERE id = 3")
        assert isinstance(update, UpdateStatement) and len(update.assignments) == 2
        delete = parse_statement("DELETE FROM t WHERE id = 1")
        assert isinstance(delete, DeleteStatement)
        drop = parse_statement("DROP TABLE IF EXISTS t, s")
        assert isinstance(drop, DropTableStatement) and drop.if_exists and len(drop.names) == 2

    def test_script_parsing(self):
        statements = parse_script("SELECT 1; SELECT 2;; SELECT 3")
        assert len(statements) == 3

    def test_unsupported_statement_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("VACUUM t")

    def test_trailing_tokens_raise(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT 1 SELECT 2")
