"""Dictionary/RLE compression lifecycle: the edges the fuzzer only grazes.

:class:`~repro.engine.columnar.DictColumn` unit behavior (None vs NaN
round-trip, the RLE tier and its permanent conversion to packed codes,
raise-before-mutate on cardinality and code-space overflow), the
:class:`~repro.engine.columnar.ColumnStore` demotion contract (dictionary
columns silently become plain object lists and every fast path declines),
database-level demotion mid-INSERT, the position remaps that indexes and
DELETE perform over compressed segments, bitmap-aware in-place UPDATE
index maintenance on both the incremental-``replace`` and bulk-rebuild
paths, and the ``dict16`` wire format the parallel workers ship.
"""

from __future__ import annotations

import math
from array import array

import pytest

from repro import Database
from repro.engine.columnar import ColumnStore, DictColumn
from repro.engine.schema import Schema
from repro.engine.vectorized import _pack_column, _unpack_column


# ---------------------------------------------------------------------------
# DictColumn unit behavior
# ---------------------------------------------------------------------------


def test_dict_column_none_vs_nan_round_trip():
    column = DictColumn()
    nan = float("nan")
    for value in ["x", None, nan, "x", None, nan]:
        column.append(value)

    assert len(column) == 6
    assert column[0] == "x"
    assert column[1] is None
    assert isinstance(column[2], float) and math.isnan(column[2])
    assert column[4] is None
    assert math.isnan(column[5])

    # Storage keeps None and NaN distinct, but the null accounting follows
    # the SQL contract shared with TypedColumn: both are SQL NULL.
    positions = column.null_positions()
    assert positions == {1, 2, 4, 5}
    mask = column.null_mask()
    assert mask is not None and set(map(int, mask.nonzero()[0])) == {1, 2, 4, 5}


def test_dict_column_keys_are_type_exact():
    column = DictColumn()
    for value in [True, 1, 1.0, "1"]:
        column.append(value)
    materialized = list(column)
    assert materialized[0] is True
    assert materialized[1] == 1 and type(materialized[1]) is int
    assert materialized[2] == 1.0 and type(materialized[2]) is float
    assert materialized[3] == "1"
    # Four distinct dictionary entries, not one.
    assert len(column.values) == 4


def test_dict_column_rle_tier_survives_constant_and_sorted_loads():
    column = DictColumn()
    shadow = []
    for value in ["a"] * 500 + ["b"] * 500:
        column.append(value)
        shadow.append(value)
    # Two runs cover a thousand rows: still in the RLE tier.
    assert column._codes is None
    assert len(column._run_codes) == 2
    assert list(column) == shadow
    assert column[499] == "a" and column[500] == "b"
    assert list(column[498:502]) == ["a", "a", "b", "b"]


def test_dict_column_converts_to_packed_on_short_runs():
    column = DictColumn()
    shadow = []
    for i in range(400):
        value = "ab"[i % 2]
        column.append(value)
        shadow.append(value)
    # Alternating values: mean run length 1, so the column gave up on RLE.
    assert column._codes is not None
    assert column._run_codes is None
    assert list(column) == shadow


def test_dict_column_set_converts_rle_to_packed():
    column = DictColumn()
    for _ in range(10):
        column.append("a")
    assert column._codes is None
    column.set(4, "b")
    assert column._codes is not None  # point writes need positional codes
    assert list(column) == ["a"] * 4 + ["b"] + ["a"] * 5
    column.set(4, None)
    assert column[4] is None
    with pytest.raises(IndexError):
        column.set(10, "c")


def test_dict_column_cardinality_overflow_raises_before_mutating():
    column = DictColumn(max_distinct=3)
    for value in ["a", "b", "c", "a"]:
        column.append(value)
    with pytest.raises(OverflowError):
        column.append("d")
    # Raise-before-mutate: the failed append left no trace.
    assert len(column) == 4
    assert list(column) == ["a", "b", "c", "a"]
    # Existing entries (and NULL) still append fine afterwards.
    column.append("b")
    column.append(None)
    assert list(column) == ["a", "b", "c", "a", "b", None]


def test_dict_column_code_space_overflow():
    # A caller-supplied threshold cannot outrun the int16 code space.
    column = DictColumn(max_distinct=10**6)
    for i in range(DictColumn._CODE_LIMIT):
        column.append(i)
    with pytest.raises(OverflowError):
        column.append("one-too-many")
    assert len(column) == DictColumn._CODE_LIMIT
    assert column[0] == 0 and column[-1] == DictColumn._CODE_LIMIT - 1


def test_dict_column_unhashable_value_raises_type_error():
    column = DictColumn()
    column.append("a")
    with pytest.raises(TypeError):
        column.append(["unhashable"])
    assert list(column) == ["a"]


# ---------------------------------------------------------------------------
# ColumnStore demotion contract
# ---------------------------------------------------------------------------


def _text_store():
    return ColumnStore(Schema.from_pairs([("id", "integer"), ("s", "text")]))


def test_column_store_demotes_dictionary_on_unhashable():
    store = _text_store()
    store.append((1, "a"))
    assert store.dict_view(1) is not None
    store.append((2, ["unhashable"]))  # bypasses SQL coercion on purpose
    assert store.dict_view(1) is None  # demoted: fast paths decline
    assert store[0] == (1, "a")
    assert store[1] == (2, ["unhashable"])
    store.append((3, "b"))
    assert store[2] == (3, "b")


def test_column_store_set_rows_demotes_and_reapplies():
    store = _text_store()
    for i in range(6):
        store.append((i, f"s{i}"))
    # One of the in-place writes is unhashable: the column demotes and every
    # write in the batch is re-applied against the object list.
    store.set_rows([1, 3], [(1, ["x"]), (3, "replaced")], [1])
    assert store.dict_view(1) is None
    assert store[1] == (1, ["x"])
    assert store[3] == (3, "replaced")
    assert store[0] == (0, "s0") and store[5] == (5, "s5")


def test_column_store_keep_positions_remaps_dictionary_codes():
    store = _text_store()
    for i in range(10):
        store.append((i, "abc"[i % 3]))
    store.keep_positions([0, 3, 4, 8])
    assert len(store) == 4
    assert [row[1] for row in store] == ["a", "a", "b", "c"]
    view = store.dict_view(1)
    assert view is not None  # still compressed after the remap
    codes, values = view
    assert [values[code] for code in codes] == ["a", "a", "b", "c"]


# ---------------------------------------------------------------------------
# Database-level demotion and index/DELETE remaps
# ---------------------------------------------------------------------------


def _make_db(**kwargs):
    db = Database(num_segments=3, **kwargs)
    db.create_table(
        "t", [("id", "integer"), ("s", "text")], distributed_by="id"
    )
    return db


def test_demotion_mid_insert_is_observationally_invisible(monkeypatch):
    monkeypatch.setattr(DictColumn, "MAX_DISTINCT", 4)
    db = _make_db()
    db.load_rows("t", [(i, "abc"[i % 3]) for i in range(1, 31)])

    compressed = db.execute("SELECT count(*) FROM t WHERE s = 'a'")
    assert compressed.rows == [(10,)]
    assert compressed.stats.where_vectorized is True

    # Blow the per-column dictionary: the affected segments demote to plain
    # object lists mid-INSERT, with no error surfaced.
    db.execute(
        "INSERT INTO t VALUES "
        + ", ".join(f"({i}, 'unique_{i}')" for i in range(31, 61))
    )

    after = db.execute("SELECT count(*) FROM t WHERE s = 'a'")
    assert after.rows == [(10,)]
    assert after.stats.where_vectorized is False  # dict path declined
    listed = db.execute("SELECT s FROM t WHERE id = 45")
    assert listed.rows == [("unique_45",)]
    # Pre-demotion rows are untouched by the representation change.
    assert db.execute("SELECT s FROM t WHERE id = 1").rows == [("b",)]


def test_create_index_and_delete_remap_compressed_positions():
    db = _make_db()
    twin = _make_db(columnar_storage=False)
    rows = [(i, "abcd"[i % 4]) for i in range(1, 101)]
    for target in (db, twin):
        target.load_rows("t", rows)
        target.execute("CREATE INDEX t_s ON t USING hash (s)")
        target.execute("ANALYZE t")

    deleted = db.execute("DELETE FROM t WHERE id % 3 = 0")
    assert deleted.rowcount == twin.execute("DELETE FROM t WHERE id % 3 = 0").rowcount

    for value in "abcd":
        query = f"SELECT id FROM t WHERE s = '{value}' ORDER BY id"
        left, right = db.execute(query), twin.execute(query)
        assert left.rows == right.rows, value
        # The hash index survived the position remap and still serves scans.
        assert any(d.index_name == "t_s" for d in left.stats.scan_details)


# ---------------------------------------------------------------------------
# In-place UPDATE: index maintenance, segment stability
# ---------------------------------------------------------------------------


def _indexed_db(row_count):
    db = _make_db()
    db.load_rows("t", [(i, f"name_{i % 5}") for i in range(1, row_count + 1)])
    db.execute("CREATE INDEX t_s_hash ON t USING hash (s)")
    db.execute("CREATE INDEX t_s_sorted ON t (s)")
    db.execute("ANALYZE t")
    return db


@pytest.mark.parametrize("row_count", [60, 1200], ids=["incremental", "bulk-rebuild"])
def test_update_in_place_maintains_indexes(row_count):
    # 60 rows touched -> per-entry index.replace(); 1200 -> one bulk rebuild.
    db = _indexed_db(row_count)
    result = db.execute("UPDATE t SET s = 'renamed' WHERE s = 'name_2'")
    assert result.rowcount == row_count // 5

    gone = db.execute("SELECT id FROM t WHERE s = 'name_2'")
    assert gone.rows == []
    moved = db.execute("SELECT count(*) FROM t WHERE s = 'renamed'")
    assert moved.rows == [(row_count // 5,)]
    # Both index families still point at live positions.
    for index_name in ("t_s_hash", "t_s_sorted"):
        assert db.catalog.get_index(index_name) is not None
    spot = db.execute("SELECT s FROM t WHERE id = 2")
    assert spot.rows == [("renamed",)]


def test_update_never_moves_rows_between_segments():
    db = _indexed_db(90)
    table = db.catalog.get_table("t")
    before = [len(table.segment_view(i)) for i in range(table.num_segments)]
    db.execute("UPDATE t SET s = 'x' WHERE id % 2 = 0")
    after = [len(table.segment_view(i)) for i in range(table.num_segments)]
    assert before == after


def test_no_match_update_does_not_invalidate_anything():
    db = _indexed_db(60)
    table = db.catalog.get_table("t")
    version = table._data_version
    result = db.execute("UPDATE t SET s = 'y' WHERE s = 'no-such-value'")
    assert result.rowcount == 0
    assert table._data_version == version


# ---------------------------------------------------------------------------
# dict16 wire format (parallel worker shipping)
# ---------------------------------------------------------------------------


def test_dict16_wire_round_trip():
    column = DictColumn()
    values = ["red", None, "green", "red", None, "blue", "red"]
    for value in values:
        column.append(value)

    tag, payload = _pack_column(column)
    assert tag == "dict16"
    codes, dictionary = payload
    assert isinstance(codes, array) and codes.typecode == "h"
    assert list(_unpack_column((tag, payload))) == values


def test_dict16_wire_round_trip_preserves_nan_vs_none():
    column = DictColumn()
    nan = float("nan")
    for value in [nan, None, "x"]:
        column.append(value)
    unpacked = list(_unpack_column(_pack_column(column)))
    assert math.isnan(unpacked[0])
    assert unpacked[1] is None
    assert unpacked[2] == "x"


def test_parallel_query_ships_compressed_columns():
    db = Database(num_segments=4, parallel=2)
    db.create_table("t", [("id", "integer"), ("s", "text")], distributed_by="id")
    db.load_rows("t", [(i, "abc"[i % 3]) for i in range(1, 201)])
    result = db.execute(
        "SELECT s, count(*) FROM t WHERE s != 'c' GROUP BY s ORDER BY s"
    )
    assert result.rows == [("a", 66), ("b", 67)]
