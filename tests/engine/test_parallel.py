"""Real parallel segment execution: worker-pool tier parity and lifecycle.

The third execution tier (``Database(parallel=N)``, ``repro.engine.parallel``)
must be observationally identical to both in-process tiers: same results for
the whole compiled-parity corpus, same queries succeeding, with non-picklable
user-defined aggregates transparently falling back to the in-process fold.
These tests force the pool on (``min_dispatch_rows = 0``) so even the small
test tables actually cross the process boundary.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import Database
from repro.engine.parallel import SegmentWorkerPool, shippable_spec
from repro.engine.vectorized import ColumnBatch, ConstantColumn
from repro.errors import ValidationError

from test_compiled_parity import CORPUS, _assert_results_equal, _make_pair


def _force_pool(database: Database) -> Database:
    """Dispatch every eligible aggregate through the workers, however small."""
    database.worker_pool.min_dispatch_rows = 0
    return database


@pytest.fixture(scope="module")
def parallel_pair():
    """(parallel db, serial db) with identical contents; pool torn down after."""
    compiled_serial, _ = _make_pair()
    parallel_db = Database(num_segments=4, parallel=2)
    _force_pool(parallel_db)
    # Clone the corpus table into the parallel database.
    parallel_db.create_table(
        "t",
        [
            ("id", "integer"),
            ("grp", "text"),
            ("a", "double precision"),
            ("b", "double precision"),
            ("s", "text"),
            ("arr", "double precision[]"),
        ],
        distributed_by="id",
    )
    parallel_db.load_rows("t", list(compiled_serial.table("t").rows()))
    yield parallel_db, compiled_serial
    parallel_db.close()


@pytest.mark.parametrize("query", CORPUS)
def test_parallel_matches_serial(parallel_pair, query):
    parallel_db, serial_db = parallel_pair
    _assert_results_equal(parallel_db.execute(query), serial_db.execute(query), query)


def test_stats_record_measured_parallel_execution(parallel_pair):
    parallel_db, _ = parallel_pair
    stats = parallel_db.execute("SELECT sum(a) FROM t").stats
    timings = stats.aggregate_timings[0]
    assert timings.executed_parallel
    assert timings.num_workers == 2
    assert timings.measured_parallel_wall_seconds > 0.0
    assert timings.measured_parallel_seconds >= timings.measured_parallel_wall_seconds
    assert timings.measured_speedup is not None
    assert len(timings.per_segment_seconds) == 4  # worker-measured fold times
    assert stats.executed_parallel
    assert stats.measured_parallel_seconds is not None
    # The simulated quantity is still computed — and clearly distinct.
    assert stats.simulated_parallel_seconds >= 0.0


def test_serial_database_never_reports_measured_parallelism(parallel_pair):
    _, serial_db = parallel_pair
    stats = serial_db.execute("SELECT sum(a) FROM t").stats
    assert serial_db.worker_pool is None
    assert not stats.executed_parallel
    assert stats.measured_parallel_seconds is None
    assert all(t.num_workers == 0 for t in stats.aggregate_timings)


def test_non_picklable_uda_falls_back_to_serial(parallel_pair):
    parallel_db, _ = parallel_pair
    parallel_db.create_aggregate(
        "lambda_sum",
        transition=lambda state, value: state + value,
        merge=lambda a, b: a + b,
        initial_state=0,
    )
    result = parallel_db.execute("SELECT lambda_sum(id) FROM t")
    assert result.rows[0][0] == sum(range(1, 61))
    assert not result.stats.aggregate_timings[0].executed_parallel


def test_module_level_uda_ships_to_workers(parallel_pair):
    parallel_db, _ = parallel_pair
    from repro.methods import linear_regression

    definition = linear_regression.make_linregr_aggregate()
    assert shippable_spec(definition, True) is not None
    assert shippable_spec(definition, True)[0] == "funcs"


def test_linregr_parity_under_real_parallelism():
    from repro.datasets import make_regression, load_regression_table
    from repro.methods import linear_regression

    results = []
    for workers in (0, 2):
        db = Database(num_segments=6, parallel=workers)
        if workers:
            _force_pool(db)
        data = make_regression(400, 6, noise=0.3, seed=11)
        load_regression_table(db, "data", data)
        results.append(linear_regression.train(db, "data"))
        timings = db.last_stats.aggregate_timings[0]
        assert timings.executed_parallel == bool(workers)
        db.close()
    serial, parallel = results
    np.testing.assert_allclose(serial.coef, parallel.coef, rtol=1e-10)
    np.testing.assert_allclose(serial.std_err, parallel.std_err, rtol=1e-10)
    assert serial.num_rows == parallel.num_rows


def test_builtin_specs_travel_by_name(parallel_pair):
    parallel_db, _ = parallel_pair
    for name in ("count", "sum", "min", "max", "bool_and", "string_agg"):
        definition = parallel_db.catalog.get_aggregate(name)
        spec = shippable_spec(definition, True)
        assert spec == ("builtin", name)
        pickle.dumps(spec)  # must always cross the wire


def test_replaced_builtin_name_is_not_confused_with_builtin():
    db = Database(num_segments=2, parallel=1)
    _force_pool(db)
    db.create_table("v", [("x", "double precision")])
    db.load_rows("v", [(float(i),) for i in range(20)])
    # A user aggregate that *shadows* a builtin name with different semantics
    # must never be resolved to the builtin inside a worker.
    db.create_aggregate(
        "sum",
        transition=lambda state, value: state + 2 * value,
        merge=lambda a, b: a + b,
        initial_state=0.0,
    )
    assert db.query_scalar("SELECT sum(x) FROM v") == pytest.approx(2 * sum(range(20)))
    db.close()


def test_pool_is_persistent_and_reused(parallel_pair):
    parallel_db, _ = parallel_pair
    pool = parallel_db.worker_pool
    assert pool.started  # earlier tests already ran queries
    parallel_db.execute("SELECT avg(a) FROM t")
    parallel_db.execute("SELECT max(b) FROM t")
    assert parallel_db.worker_pool is pool  # same pool object, no respawn


def test_small_fanouts_stay_in_process():
    db = Database(num_segments=4, parallel=2)  # default dispatch floor
    db.create_table("tiny", [("x", "double precision")])
    db.load_rows("tiny", [(float(i),) for i in range(10)])
    result = db.execute("SELECT sum(x) FROM tiny")
    assert result.rows[0][0] == float(sum(range(10)))
    assert not result.stats.aggregate_timings[0].executed_parallel
    assert not db.worker_pool.started  # never even spawned
    db.close()


def test_iteration_controller_warms_the_pool():
    from repro.driver import IterationController

    db = Database(num_segments=2, parallel=1)
    assert not db.worker_pool.started
    controller = IterationController(db, initial_state=0.0, max_iterations=3)
    assert db.worker_pool.started  # spawn cost paid before the first iteration
    controller.cleanup()
    db.close()


def test_database_close_is_idempotent_and_disables_the_tier():
    db = Database(num_segments=2, parallel=2)
    _force_pool(db)
    db.create_table("v", [("x", "double precision")])
    db.load_rows("v", [(float(i),) for i in range(50)])
    assert db.execute("SELECT sum(x) FROM v").stats.aggregate_timings[0].executed_parallel
    db.close()
    db.close()
    # Still queryable, just without workers.
    result = db.execute("SELECT sum(x) FROM v")
    assert result.rows[0][0] == float(sum(range(50)))
    assert not result.stats.aggregate_timings[0].executed_parallel


def test_parallel_validation():
    with pytest.raises(ValidationError):
        Database(parallel=-1)
    with pytest.raises(ValidationError):
        SegmentWorkerPool(0)


def test_column_batch_pickles_compactly_and_exactly():
    floats = [1.5, float("nan"), -0.0, 3.25]
    mixed = [1, None, "x", 2.5]
    batch = ColumnBatch((floats, mixed))
    restored = pickle.loads(pickle.dumps(batch))
    assert restored.length == batch.length
    assert restored.columns[0][0] == 1.5 and restored.columns[0][2] == -0.0
    assert restored.columns[0][1] != restored.columns[0][1]  # NaN round-trips
    assert restored.columns[1] == mixed  # types preserved on the raw path
    assert all(type(v) is float for v in restored.columns[0])

    constant = ColumnBatch((ConstantColumn(1, 10_000),), prefiltered=True)
    payload = pickle.dumps(constant)
    assert len(payload) < 500  # O(1) wire format, not 10k pickled ints
    restored = pickle.loads(payload)
    assert restored.prefiltered and len(restored) == 10_000
    assert list(restored.columns[0][:3]) == [1, 1, 1]
