"""Tests for the macro-programming helpers: templating and the iteration controller."""

import pytest

from repro import Database
from repro.driver import (
    IterationController,
    QueryTemplate,
    is_valid_identifier,
    quote_identifier,
    quote_literal,
    validate_column_type,
    validate_columns_exist,
    validate_identifier,
    validate_table_absent,
    validate_table_exists,
)
from repro.errors import ConvergenceError, ValidationError


class TestTemplating:
    def test_identifier_validation(self):
        assert is_valid_identifier("my_table")
        assert not is_valid_identifier("1bad")
        assert not is_valid_identifier("bad; DROP TABLE users")
        assert quote_identifier("ok_name") == "ok_name"
        with pytest.raises(ValidationError):
            validate_identifier("not ok")

    def test_quote_literal(self):
        assert quote_literal(None) == "NULL"
        assert quote_literal(True) == "TRUE"
        assert quote_literal(3.5) == "3.5"
        assert quote_literal("it's") == "'it''s'"
        with pytest.raises(ValidationError):
            quote_literal(object())

    def test_table_and_column_validation(self, numbers_db):
        validate_table_exists(numbers_db, "t")
        with pytest.raises(ValidationError):
            validate_table_exists(numbers_db, "missing")
        with pytest.raises(ValidationError):
            validate_table_absent(numbers_db, "t")
        validate_columns_exist(numbers_db, "t", ["id", "value"])
        with pytest.raises(ValidationError):
            validate_columns_exist(numbers_db, "t", ["nope"])

    def test_column_type_validation(self, regression_db):
        validate_column_type(regression_db, "regr", "x", expect_array=True)
        validate_column_type(regression_db, "regr", "y", expect_numeric=True)
        with pytest.raises(ValidationError):
            validate_column_type(regression_db, "regr", "y", expect_array=True)
        with pytest.raises(ValidationError):
            validate_column_type(regression_db, "regr", "x", expect_array=False)

    def test_query_template_renders_and_validates(self):
        template = QueryTemplate("SELECT {column} FROM {table}")
        assert template.render(column="y", table="data") == "SELECT y FROM data"
        with pytest.raises(ValidationError):
            template.render(column="y")  # missing table
        with pytest.raises(ValidationError):
            template.render(column="y; DROP", table="data")
        with pytest.raises(ValidationError):
            template.render(column="y", table="data", extra="x")

    def test_query_template_allows_column_lists(self):
        template = QueryTemplate("SELECT {columns} FROM {table}")
        rendered = template.render(columns="a, b, c", table="t")
        assert rendered == "SELECT a, b, c FROM t"


class TestIterationController:
    def test_update_and_history(self, db):
        controller = IterationController(db, initial_state=0.0, max_iterations=10)
        with controller:
            for _ in range(3):
                controller.update("SELECT %(previous_state)s + 1")
            assert controller.iteration == 3
            assert controller.state == 3.0
            assert controller.history() == [0.0, 1.0, 2.0, 3.0]
            assert controller.state_at(1) == 1.0

    def test_run_until_convergence(self, db):
        controller = IterationController(db, initial_state=100.0, max_iterations=50)
        final = controller.run(
            "SELECT %(previous_state)s / 2",
            converged=lambda previous, current: abs(previous - current) < 0.5,
        )
        assert final < 1.0
        assert not db.has_table(controller.state_table)

    def test_exhausted_budget_raises(self, db):
        controller = IterationController(db, initial_state=0.0, max_iterations=3)
        with pytest.raises(ConvergenceError):
            controller.run("SELECT %(previous_state)s + 1", converged=lambda p, c: False)

    def test_exhausted_budget_can_be_tolerated(self, db):
        controller = IterationController(
            db, initial_state=0.0, max_iterations=3, fail_on_max_iterations=False
        )
        final = controller.run("SELECT %(previous_state)s + 1", converged=lambda p, c: False)
        assert final == 3.0

    def test_state_passed_into_aggregate_over_source(self, numbers_db):
        controller = IterationController(numbers_db, initial_state=0.0, max_iterations=5)
        with controller:
            # The Figure 3 shape: one aggregate pass over the source table per
            # iteration, parameterized by the previous state.
            new_state = controller.update("SELECT %(previous_state)s + count(*) FROM t")
            assert new_state == 6.0

    def test_state_table_join_placeholder(self, numbers_db):
        controller = IterationController(numbers_db, initial_state=5.0, max_iterations=5)
        with controller:
            # Joining against the staged state table directly via {state_table}.
            new_state = controller.update(
                "SELECT max(state) + 1 FROM {state_table} WHERE iteration = %(iteration)s"
            )
            assert new_state == 6.0

    def test_iteration_bookkeeping(self, db):
        controller = IterationController(db, initial_state=0.0, max_iterations=5)
        with controller:
            controller.update("SELECT %(previous_state)s + 1")
            controller.update("SELECT %(previous_state)s + 1")
            assert len(controller.per_iteration_seconds) == 2
            assert controller.total_seconds >= 0.0

    def test_keep_state_table(self, db):
        controller = IterationController(db, initial_state=1.0, max_iterations=2, keep_state_table=True)
        controller.update("SELECT %(previous_state)s * 2")
        controller.finish()
        assert db.has_table(controller.state_table)

    def test_invalid_max_iterations(self, db):
        with pytest.raises(ValidationError):
            IterationController(db, max_iterations=0)
