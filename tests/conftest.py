"""Shared fixtures: databases with different segment counts and small workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database
from repro.datasets import (
    make_blobs,
    make_logistic,
    make_regression,
    load_logistic_table,
    load_points_table,
    load_regression_table,
)


@pytest.fixture
def db() -> Database:
    """A single-segment database (PostgreSQL-like)."""
    return Database(num_segments=1)


@pytest.fixture
def db4() -> Database:
    """A four-segment database (Greenplum-like)."""
    return Database(num_segments=4)


@pytest.fixture
def regression_db(db4: Database) -> Database:
    """A four-segment database with a small regression table named ``regr``."""
    data = make_regression(400, 3, noise=0.05, seed=11)
    load_regression_table(db4, "regr", data)
    db4.regression_data = data  # type: ignore[attr-defined]
    return db4


@pytest.fixture
def logistic_db(db4: Database) -> Database:
    """A four-segment database with a logistic table named ``logi``."""
    data = make_logistic(400, 3, seed=13)
    load_logistic_table(db4, "logi", data)
    db4.logistic_data = data  # type: ignore[attr-defined]
    return db4


@pytest.fixture
def points_db(db4: Database) -> Database:
    """A four-segment database with clustered points in ``pts``."""
    points, labels, centroids = make_blobs(300, 2, 3, seed=17)
    load_points_table(db4, "pts", points)
    db4.blob_points = points  # type: ignore[attr-defined]
    db4.blob_labels = labels  # type: ignore[attr-defined]
    db4.blob_centroids = centroids  # type: ignore[attr-defined]
    return db4


@pytest.fixture
def numbers_db(db: Database) -> Database:
    """A tiny table of integers/doubles/text used by many engine tests."""
    db.create_table(
        "t",
        [("id", "integer"), ("grp", "text"), ("value", "double precision")],
    )
    rows = [
        (1, "a", 1.0),
        (2, "a", 2.0),
        (3, "b", 3.0),
        (4, "b", 4.0),
        (5, "b", None),
        (6, "c", 6.0),
    ]
    db.load_rows("t", rows)
    return db
