"""Tests for OLS linear regression: all kernels, statistics, paper example shape."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Database
from repro.datasets import load_regression_table, make_regression
from repro.errors import ValidationError
from repro.methods import linear_regression
from repro.methods.linear_regression import KERNELS, VERSION_KERNELS, make_linregr_aggregate


class TestTraining:
    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_all_kernels_recover_coefficients(self, regression_db, kernel):
        data = regression_db.regression_data
        model = linear_regression.train(regression_db, "regr", kernel=kernel)
        np.testing.assert_allclose(model.coef, data.coefficients, atol=0.05)
        assert model.r2 > 0.99
        assert model.num_rows == data.features.shape[0]

    def test_kernels_agree_with_each_other(self, regression_db):
        results = {
            kernel: linear_regression.train(regression_db, "regr", kernel=kernel).coef
            for kernel in KERNELS
        }
        np.testing.assert_allclose(results["optimized"], results["naive"], rtol=1e-8)
        np.testing.assert_allclose(results["optimized"], results["unoptimized"], rtol=1e-8)

    def test_matches_numpy_closed_form(self, regression_db):
        data = regression_db.regression_data
        model = linear_regression.train(regression_db, "regr")
        expected, *_ = np.linalg.lstsq(data.features, data.response, rcond=None)
        np.testing.assert_allclose(model.coef, expected, rtol=1e-6)

    def test_statistics_shapes_and_ranges(self, regression_db):
        model = linear_regression.train(regression_db, "regr")
        width = regression_db.regression_data.features.shape[1]
        assert model.std_err.shape == (width,)
        assert model.t_stats.shape == (width,)
        assert model.p_values.shape == (width,)
        assert np.all(model.std_err >= 0)
        assert np.all((model.p_values >= 0) & (model.p_values <= 1))
        assert model.condition_no >= 1.0

    def test_significant_coefficients_have_small_p_values(self, regression_db):
        data = regression_db.regression_data
        model = linear_regression.train(regression_db, "regr")
        strong = np.abs(data.coefficients) > 0.5
        assert np.all(model.p_values[strong] < 0.01)

    def test_paper_example_record_fields(self, db):
        # The Section 4.1.1 example: SELECT (linregr(y, x)).* FROM data,
        # producing coef, r2, std_err, t_stats, p_values and condition_no.
        rng = np.random.default_rng(0)
        x = np.column_stack([np.ones(200), rng.uniform(0, 10, 200)])
        y = 1.7 + 2.2 * x[:, 1] + rng.normal(scale=1.0, size=200)
        db.create_table("data", [("x", "double precision[]"), ("y", "double precision")])
        db.load_rows("data", [(x[i], float(y[i])) for i in range(200)])
        linear_regression.install_linear_regression(db)
        record = db.query_scalar("SELECT linregr(y, x) FROM data")
        assert set(record) >= {"coef", "r2", "std_err", "t_stats", "p_values", "condition_no"}
        assert record["coef"][0] == pytest.approx(1.7, abs=0.5)
        assert record["coef"][1] == pytest.approx(2.2, abs=0.1)
        assert record["r2"] > 0.9

    def test_parallel_matches_serial(self):
        data = make_regression(300, 3, seed=21)
        results = []
        for segments in (1, 6):
            db = Database(num_segments=segments)
            load_regression_table(db, "regr", data)
            results.append(linear_regression.train(db, "regr").coef)
        np.testing.assert_allclose(results[0], results[1], rtol=1e-9)

    def test_predict_in_database(self, regression_db):
        model = linear_regression.train(regression_db, "regr")
        predictions = linear_regression.predict(regression_db, model, "regr")
        assert len(predictions) == regression_db.regression_data.features.shape[0]
        data = regression_db.regression_data
        predicted = np.asarray([row["prediction"] for row in predictions])
        np.testing.assert_allclose(predicted, data.features @ model.coef, rtol=1e-9)

    def test_result_predict_method(self, regression_db):
        model = linear_regression.train(regression_db, "regr")
        single = model.predict(regression_db.regression_data.features[:5])
        assert single.shape == (5,)


class TestValidationAndEdgeCases:
    def test_unknown_kernel_rejected(self, regression_db):
        with pytest.raises(ValidationError):
            linear_regression.train(regression_db, "regr", kernel="turbo")
        with pytest.raises(ValidationError):
            make_linregr_aggregate("turbo")

    def test_missing_table_and_columns_rejected(self, db):
        with pytest.raises(ValidationError):
            linear_regression.train(db, "missing")
        db.create_table("bad", [("y", "double precision"), ("x", "double precision")])
        db.load_rows("bad", [(1.0, 1.0)])
        with pytest.raises(ValidationError):
            linear_regression.train(db, "bad")  # x is not an array column

    def test_empty_table_rejected(self, db):
        db.create_table("empty", [("y", "double precision"), ("x", "double precision[]")])
        with pytest.raises(ValidationError):
            linear_regression.train(db, "empty", "y", "x")

    def test_null_rows_are_skipped(self, db):
        db.create_table("d", [("y", "double precision"), ("x", "double precision[]")])
        db.load_rows("d", [(1.0, np.array([1.0])), (None, np.array([2.0])), (2.0, np.array([2.0]))])
        model = linear_regression.train(db, "d", "y", "x")
        assert model.num_rows == 2

    def test_collinear_features_still_produce_model(self, db):
        rng = np.random.default_rng(3)
        base = rng.normal(size=100)
        x = np.column_stack([base, base])  # perfectly collinear
        y = 3 * base
        db.create_table("c", [("y", "double precision"), ("x", "double precision[]")])
        db.load_rows("c", [(float(y[i]), x[i]) for i in range(100)])
        model = linear_regression.train(db, "c", "y", "x")
        assert model.condition_no == float("inf")
        np.testing.assert_allclose(model.predict(x), y, atol=1e-6)

    def test_version_kernel_map_covers_paper_versions(self):
        assert set(VERSION_KERNELS) == {"v0.1alpha", "v0.2.1beta", "v0.3"}
        assert set(VERSION_KERNELS.values()) == set(KERNELS)


class TestProperties:
    @given(
        num_rows=st.integers(min_value=20, max_value=120),
        width=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=15, deadline=None)
    def test_fit_matches_numpy_for_random_problems(self, num_rows, width, seed):
        data = make_regression(num_rows, width, noise=0.2, seed=seed)
        db = Database(num_segments=3)
        load_regression_table(db, "regr", data)
        model = linear_regression.train(db, "regr")
        expected, *_ = np.linalg.lstsq(data.features, data.response, rcond=None)
        np.testing.assert_allclose(model.coef, expected, rtol=1e-5, atol=1e-6)
