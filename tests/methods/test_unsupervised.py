"""Tests for SVD factorization, LDA and association rules."""

import numpy as np
import pytest

from repro import Database
from repro.datasets import make_baskets, make_documents, make_low_rank_matrix, make_ratings, load_baskets_table
from repro.errors import ValidationError
from repro.methods import association_rules, lda, svd
from repro.support import BlockedMatrix


class TestTruncatedSVD:
    def test_recovers_low_rank_structure(self):
        matrix = make_low_rank_matrix(40, 25, 3, noise=0.0, seed=0)
        result = svd.truncated_svd(matrix, rank=3, seed=1)
        assert result.relative_error(matrix) < 1e-6
        assert result.singular_values.shape == (3,)
        assert np.all(np.diff(result.singular_values) <= 1e-8)  # non-increasing

    def test_singular_values_match_numpy(self):
        matrix = make_low_rank_matrix(30, 20, 5, noise=0.01, seed=2)
        result = svd.truncated_svd(matrix, rank=4, seed=3)
        expected = np.linalg.svd(matrix, compute_uv=False)[:4]
        np.testing.assert_allclose(result.singular_values, expected, rtol=1e-3)

    def test_orthonormal_factors(self):
        matrix = make_low_rank_matrix(25, 15, 4, noise=0.0, seed=4)
        result = svd.truncated_svd(matrix, rank=4, seed=5)
        # Power iteration with deflation: orthogonality holds to the iteration tolerance.
        np.testing.assert_allclose(result.u.T @ result.u, np.eye(4), atol=1e-3)
        np.testing.assert_allclose(result.v.T @ result.v, np.eye(4), atol=1e-3)

    def test_invalid_rank_rejected(self):
        with pytest.raises(ValidationError):
            svd.truncated_svd(np.ones((5, 5)), rank=0)
        with pytest.raises(ValidationError):
            svd.truncated_svd(np.ones((5, 5)), rank=6)

    def test_table_backed_svd(self):
        db = Database(num_segments=2)
        matrix = make_low_rank_matrix(20, 12, 2, noise=0.0, seed=6)
        BlockedMatrix.from_dense(matrix, 5).store(db, "m_blocks")
        result = svd.truncated_svd_table(db, "m_blocks", 20, 12, rank=2, block_size=5, seed=7)
        assert result.relative_error(matrix) < 1e-6


class TestRatingsFactorization:
    def test_als_fits_ratings(self):
        db = Database(num_segments=2)
        triples = make_ratings(25, 20, 3, density=0.5, seed=8)
        db.create_table(
            "ratings",
            [("user_id", "integer"), ("item_id", "integer"), ("rating", "double precision")],
        )
        db.load_rows("ratings", triples)
        result = svd.factorize_ratings(db, "ratings", rank=3, max_iterations=15, seed=9)
        assert result.train_rmse < 0.2
        assert result.user_factors.shape[1] == 3
        # predict is consistent with the factors
        user, item, rating = triples[0]
        assert result.predict(user, item) == pytest.approx(
            float(result.user_factors[user] @ result.item_factors[item])
        )

    def test_empty_ratings_table_rejected(self):
        db = Database()
        db.create_table(
            "ratings",
            [("user_id", "integer"), ("item_id", "integer"), ("rating", "double precision")],
        )
        with pytest.raises(ValidationError):
            svd.factorize_ratings(db, "ratings")


class TestLDA:
    def test_topics_recovered_on_synthetic_corpus(self):
        db = Database(num_segments=2)
        documents, _ = make_documents(30, 40, 3, document_length=30, seed=10)
        lda.load_corpus_table(db, "corpus", documents)
        model = lda.train(db, "corpus", num_topics=3, num_iterations=15, seed=11)
        assert model.num_topics == 3
        assert model.vocabulary_size == 40
        topic_word = model.topic_word_distribution()
        np.testing.assert_allclose(topic_word.sum(axis=1), 1.0, rtol=1e-9)
        doc_topic = model.document_topic_distribution()
        np.testing.assert_allclose(doc_topic.sum(axis=1), 1.0, rtol=1e-9)
        # Log likelihood should generally improve from the random initialization.
        assert model.log_likelihood_history[-1] >= model.log_likelihood_history[0]

    def test_top_words_are_valid_ids(self):
        db = Database()
        documents, _ = make_documents(10, 25, 2, document_length=15, seed=12)
        lda.load_corpus_table(db, "corpus", documents)
        model = lda.train(db, "corpus", num_topics=2, num_iterations=5, seed=13)
        top = model.top_words(0, 5)
        assert len(top) == 5
        assert all(0 <= word < 25 for word in top)

    def test_invalid_arguments(self):
        db = Database()
        db.create_table("corpus", [("doc_id", "integer"), ("word_id", "integer"), ("count", "integer")])
        with pytest.raises(ValidationError):
            lda.train(db, "corpus", num_topics=0)
        with pytest.raises(ValidationError):
            lda.train(db, "corpus", num_topics=2)  # empty corpus


class TestAssociationRules:
    @pytest.fixture
    def baskets_db(self):
        db = Database(num_segments=2)
        baskets = make_baskets(250, 25, patterns=[[1, 2, 3], [7, 8]],
                               pattern_probability=0.6, seed=14)
        load_baskets_table(db, "baskets", baskets)
        return db

    def test_planted_itemsets_are_found(self, baskets_db):
        itemsets, rules = association_rules.mine(
            baskets_db, "baskets", min_support=0.3, min_confidence=0.6
        )
        frequent = {itemset.items for itemset in itemsets}
        assert (1, 2) in frequent or (1, 2, 3) in frequent
        assert (7, 8) in frequent

    def test_support_and_confidence_bounds(self, baskets_db):
        itemsets, rules = association_rules.mine(
            baskets_db, "baskets", min_support=0.25, min_confidence=0.5
        )
        assert all(itemset.support >= 0.25 for itemset in itemsets)
        assert all(0.5 <= rule.confidence <= 1.0 for rule in rules)
        assert all(rule.lift > 0 for rule in rules)

    def test_rule_support_consistency(self, baskets_db):
        itemsets, rules = association_rules.mine(
            baskets_db, "baskets", min_support=0.25, min_confidence=0.5
        )
        supports = {itemset.items: itemset.support for itemset in itemsets}
        for rule in rules[:20]:
            combined = tuple(sorted(rule.antecedent + rule.consequent))
            assert supports[combined] == pytest.approx(rule.support)

    def test_apriori_monotonicity(self, baskets_db):
        itemsets, _ = association_rules.mine(
            baskets_db, "baskets", min_support=0.3, min_confidence=0.9
        )
        supports = {itemset.items: itemset.support for itemset in itemsets}
        for items, support in supports.items():
            if len(items) >= 2:
                for item in items:
                    subset = tuple(sorted(set(items) - {item}))
                    assert supports[subset] >= support - 1e-12

    def test_invalid_thresholds(self, baskets_db):
        with pytest.raises(ValidationError):
            association_rules.mine(baskets_db, "baskets", min_support=0.0)
        with pytest.raises(ValidationError):
            association_rules.mine(baskets_db, "baskets", min_confidence=1.5)
