"""Tests for naive Bayes, decision trees (C4.5) and SVM."""

import numpy as np
import pytest

from repro import Database
from repro.datasets import load_logistic_table, make_logistic
from repro.errors import ValidationError
from repro.methods import decision_tree, naive_bayes, svm
from repro.methods.decision_tree import FeatureSpec


class TestGaussianNaiveBayes:
    def test_training_and_prediction(self, logistic_db):
        data = logistic_db.logistic_data
        model = naive_bayes.train_gaussian(logistic_db, "logi", "y", "x")
        assert len(model.classes) == 2
        np.testing.assert_allclose(model.priors.sum(), 1.0)
        predictions = model.predict(data.features)
        accuracy = float(np.mean([p == float(l) for p, l in zip(predictions, data.labels)]))
        assert accuracy > 0.65

    def test_separable_classes_are_learned_exactly(self, db):
        rng = np.random.default_rng(0)
        class0 = rng.normal(loc=-5.0, size=(50, 2))
        class1 = rng.normal(loc=+5.0, size=(50, 2))
        db.create_table("sep", [("y", "integer"), ("x", "double precision[]")])
        db.load_rows("sep", [(0, row) for row in class0] + [(1, row) for row in class1])
        model = naive_bayes.train_gaussian(db, "sep", "y", "x")
        assert model.predict_one([-5.0, -5.0]) == 0
        assert model.predict_one([5.0, 5.0]) == 1

    def test_empty_table_raises(self, db):
        db.create_table("e", [("y", "integer"), ("x", "double precision[]")])
        with pytest.raises(ValidationError):
            naive_bayes.train_gaussian(db, "e", "y", "x")


class TestCategoricalNaiveBayes:
    @pytest.fixture
    def weather_db(self, db):
        db.create_table(
            "weather",
            [("outlook", "text"), ("windy", "text"), ("play", "text")],
        )
        rows = [
            ("sunny", "false", "no"), ("sunny", "true", "no"), ("overcast", "false", "yes"),
            ("rainy", "false", "yes"), ("rainy", "false", "yes"), ("rainy", "true", "no"),
            ("overcast", "true", "yes"), ("sunny", "false", "no"), ("sunny", "false", "yes"),
            ("rainy", "false", "yes"), ("sunny", "true", "yes"), ("overcast", "true", "yes"),
            ("overcast", "false", "yes"), ("rainy", "true", "no"),
        ]
        db.load_rows("weather", rows)
        return db

    def test_weather_dataset(self, weather_db):
        model = naive_bayes.train_categorical(
            weather_db, "weather", "play", ["outlook", "windy"]
        )
        assert set(model.classes) == {"yes", "no"}
        assert model.predict_one({"outlook": "overcast", "windy": "false"}) == "yes"
        assert sum(model.priors.values()) == pytest.approx(1.0)

    def test_unseen_value_uses_smoothing(self, weather_db):
        model = naive_bayes.train_categorical(weather_db, "weather", "play", ["outlook", "windy"])
        # Unknown outlook value must not crash and still return a class.
        assert model.predict_one({"outlook": "snowy", "windy": "true"}) in {"yes", "no"}

    def test_negative_smoothing_rejected(self, weather_db):
        with pytest.raises(ValidationError):
            naive_bayes.train_categorical(weather_db, "weather", "play", ["outlook"], smoothing=-1)


class TestDecisionTree:
    @pytest.fixture
    def tree_db(self, db):
        rng = np.random.default_rng(1)
        db.create_table(
            "shapes", [("size", "double precision"), ("color", "text"), ("label", "text")]
        )
        rows = []
        for _ in range(150):
            size = float(rng.uniform(0, 10))
            color = str(rng.choice(["red", "blue"]))
            label = "big" if size > 5 else ("red_small" if color == "red" else "blue_small")
            rows.append((size, color, label))
        db.load_rows("shapes", rows)
        return db

    def test_learns_axis_aligned_and_categorical_splits(self, tree_db):
        model = decision_tree.train(
            tree_db, "shapes", "label",
            [FeatureSpec("size"), FeatureSpec("color", categorical=True)],
            max_depth=4,
        )
        rows = tree_db.query_dicts("SELECT size, color, label FROM shapes")
        predictions = model.predict(rows)
        accuracy = float(np.mean([p == row["label"] for p, row in zip(predictions, rows)]))
        assert accuracy > 0.95
        assert model.num_nodes() > 1
        assert model.depth() >= 1

    def test_pure_node_becomes_leaf(self, db):
        db.create_table("pure", [("x", "double precision"), ("label", "text")])
        db.load_rows("pure", [(float(i), "only") for i in range(20)])
        model = decision_tree.train(db, "pure", "label", ["x"])
        assert model.root.is_leaf
        assert model.predict_one({"x": 3.0}) == "only"

    def test_max_depth_limits_tree(self, tree_db):
        model = decision_tree.train(
            tree_db, "shapes", "label",
            [FeatureSpec("size"), FeatureSpec("color", categorical=True)],
            max_depth=1,
        )
        assert model.depth() <= 1

    def test_pruning_does_not_grow_the_tree(self, tree_db):
        features = [FeatureSpec("size"), FeatureSpec("color", categorical=True)]
        unpruned = decision_tree.train(tree_db, "shapes", "label", features, max_depth=6)
        pruned = decision_tree.train(tree_db, "shapes", "label", features, max_depth=6, prune=True)
        assert pruned.num_nodes() <= unpruned.num_nodes()

    def test_invalid_arguments(self, tree_db):
        with pytest.raises(ValidationError):
            decision_tree.train(tree_db, "shapes", "label", ["size"], max_depth=0)
        with pytest.raises(ValidationError):
            decision_tree.train(tree_db, "shapes", "missing_column", ["size"])


class TestSVM:
    def test_classifier_separates_linearly_separable_data(self, db4):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(300, 2))
        y = np.where(x[:, 0] + x[:, 1] > 0, 1.0, -1.0)
        db4.create_table("sep", [("id", "integer"), ("x", "double precision[]"), ("y", "double precision")])
        db4.load_rows("sep", [(i, x[i], float(y[i])) for i in range(300)])
        model = svm.train_classifier(db4, "sep", max_iterations=25)
        accuracy = float(np.mean(model.predict(x) == y))
        assert accuracy > 0.9
        assert model.task == "classification"

    def test_loss_history_trends_down(self, db4):
        data = make_logistic(300, 3, seed=3, labels_plus_minus=True)
        load_logistic_table(db4, "svmdata", data)
        model = svm.train_classifier(db4, "svmdata", max_iterations=20)
        assert model.loss_history[-1] <= model.loss_history[0]

    def test_regressor_fits_linear_function(self, db4):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(300, 2))
        y = x @ np.array([1.0, -2.0])
        db4.create_table("reg", [("id", "integer"), ("x", "double precision[]"), ("y", "double precision")])
        db4.load_rows("reg", [(i, x[i], float(y[i])) for i in range(300)])
        model = svm.train_regressor(db4, "reg", max_iterations=40, epsilon=0.05)
        predictions = model.predict(x)
        assert float(np.mean(np.abs(predictions - y))) < 0.8

    def test_predict_in_database(self, db4):
        data = make_logistic(100, 2, seed=5, labels_plus_minus=True)
        load_logistic_table(db4, "svmp", data)
        model = svm.train_classifier(db4, "svmp", max_iterations=10)
        rows = svm.predict(db4, model, "svmp")
        assert len(rows) == 100
        assert set(rows[0]) == {"id", "score", "prediction"}

    def test_invalid_epsilon_rejected(self, db4):
        data = make_logistic(50, 2, seed=6)
        load_logistic_table(db4, "bad_eps", data)
        with pytest.raises(ValidationError):
            svm.train_regressor(db4, "bad_eps", epsilon=-1.0)
