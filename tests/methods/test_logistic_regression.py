"""Tests for logistic regression via the IRLS driver pattern."""

import numpy as np
import pytest

from repro import Database
from repro.datasets import load_logistic_table, make_logistic
from repro.errors import ValidationError
from repro.methods import logistic_regression


class TestTraining:
    def test_recovers_coefficients(self, logistic_db):
        data = logistic_db.logistic_data
        model = logistic_regression.train(logistic_db, "logi")
        # IRLS on 400 rows: direction and rough magnitude should match.
        assert np.corrcoef(model.coef, data.coefficients)[0, 1] > 0.95
        assert model.converged
        assert model.num_rows == 400

    def test_accuracy_close_to_bayes_optimal(self, logistic_db):
        data = logistic_db.logistic_data
        model = logistic_regression.train(logistic_db, "logi")
        accuracy = float(np.mean(model.predict(data.features) == data.labels))
        # Labels are noisy; compare against the accuracy the true coefficients achieve.
        oracle = float(np.mean((data.features @ data.coefficients > 0) == (data.labels > 0)))
        assert accuracy > 0.5
        assert accuracy >= oracle - 0.05

    def test_statistics_fields(self, logistic_db):
        model = logistic_regression.train(logistic_db, "logi")
        width = logistic_db.logistic_data.features.shape[1]
        assert model.std_err.shape == (width,)
        assert model.p_values.shape == (width,)
        assert np.all((model.p_values >= 0) & (model.p_values <= 1))
        np.testing.assert_allclose(model.odds_ratios, np.exp(model.coef))
        assert model.log_likelihood <= 0.0

    def test_temp_state_table_is_cleaned_up(self, logistic_db):
        before = set(logistic_db.table_names())
        logistic_regression.train(logistic_db, "logi")
        after = set(logistic_db.table_names())
        assert before == after

    def test_parallel_matches_serial(self):
        data = make_logistic(300, 3, seed=5)
        coefficients = []
        for segments in (1, 5):
            db = Database(num_segments=segments)
            load_logistic_table(db, "logi", data)
            coefficients.append(logistic_regression.train(db, "logi").coef)
        np.testing.assert_allclose(coefficients[0], coefficients[1], rtol=1e-6)

    def test_boolean_label_column(self, db4):
        data = make_logistic(200, 2, seed=6)
        load_logistic_table(db4, "logi_bool", data, boolean_labels=True)
        model = logistic_regression.train(db4, "logi_bool")
        assert model.num_rows == 200

    def test_iteration_budget_respected(self, logistic_db):
        model = logistic_regression.train(logistic_db, "logi", max_iterations=2)
        assert model.num_iterations <= 2

    def test_probabilities_are_calibrated_shape(self, logistic_db):
        model = logistic_regression.train(logistic_db, "logi")
        probabilities = model.predict_probability(logistic_db.logistic_data.features)
        assert np.all((probabilities >= 0) & (probabilities <= 1))

    def test_predict_in_database(self, logistic_db):
        model = logistic_regression.train(logistic_db, "logi")
        rows = logistic_regression.predict(logistic_db, model, "logi")
        assert len(rows) == 400
        assert set(rows[0]) == {"id", "probability", "prediction"}


class TestValidation:
    def test_missing_table_rejected(self, db):
        with pytest.raises(ValidationError):
            logistic_regression.train(db, "nope")

    def test_non_array_feature_column_rejected(self, db):
        db.create_table("bad", [("y", "double precision"), ("x", "double precision")])
        db.load_rows("bad", [(1.0, 1.0)])
        with pytest.raises(ValidationError):
            logistic_regression.train(db, "bad")

    def test_empty_table_rejected(self, db):
        db.create_table("empty", [("y", "double precision"), ("x", "double precision[]")])
        with pytest.raises(ValidationError):
            logistic_regression.train(db, "empty")
