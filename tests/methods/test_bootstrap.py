"""Tests for m-of-n bootstrap via the counted-iteration (virtual table) pattern."""

import numpy as np
import pytest

from repro import Database
from repro.errors import ValidationError
from repro.methods import bootstrap


@pytest.fixture
def values_db():
    db = Database(num_segments=2)
    rng = np.random.default_rng(71)
    values = rng.normal(loc=50.0, scale=5.0, size=500)
    db.create_table("v", [("x", "double precision")])
    db.load_rows("v", [(float(v),) for v in values])
    db.bootstrap_values = values  # type: ignore[attr-defined]
    return db


class TestBootstrap:
    def test_mean_interval_covers_true_mean(self, values_db):
        result = bootstrap.bootstrap(
            values_db, "v", "x", statistic="avg", num_replicates=60, seed=1
        )
        true_mean = float(values_db.bootstrap_values.mean())
        assert result.lower <= true_mean <= result.upper
        assert result.lower < result.point_estimate < result.upper
        assert result.num_replicates == 60
        assert result.standard_error > 0

    def test_interval_width_shrinks_with_sample_fraction(self, values_db):
        small = bootstrap.bootstrap(
            values_db, "v", "x", num_replicates=40, sample_fraction=0.2, seed=2
        )
        large = bootstrap.bootstrap(
            values_db, "v", "x", num_replicates=40, sample_fraction=1.0, seed=2
        )
        assert (large.upper - large.lower) < (small.upper - small.lower)

    def test_sum_and_count_statistics(self, values_db):
        total = bootstrap.bootstrap(values_db, "v", "x", statistic="sum", num_replicates=30, seed=3)
        true_sum = float(values_db.bootstrap_values.sum())
        assert abs(total.point_estimate - true_sum) / true_sum < 0.2
        count = bootstrap.bootstrap(values_db, "v", "x", statistic="count", num_replicates=30, seed=4)
        assert abs(count.point_estimate - 500) < 100

    def test_order_statistics_via_resampling(self, values_db):
        result = bootstrap.bootstrap(values_db, "v", "x", statistic="stddev", num_replicates=30, seed=5)
        true_std = float(values_db.bootstrap_values.std(ddof=1))
        assert abs(result.point_estimate - true_std) < 1.0
        extreme = bootstrap.bootstrap(values_db, "v", "x", statistic="max", num_replicates=20, seed=6)
        assert extreme.point_estimate <= float(values_db.bootstrap_values.max()) + 1e-9

    def test_higher_confidence_widens_interval(self, values_db):
        narrow = bootstrap.bootstrap(values_db, "v", "x", num_replicates=50, confidence=0.5, seed=7)
        wide = bootstrap.bootstrap(values_db, "v", "x", num_replicates=50, confidence=0.99, seed=7)
        assert (wide.upper - wide.lower) >= (narrow.upper - narrow.lower)

    def test_invalid_arguments(self, values_db):
        with pytest.raises(ValidationError):
            bootstrap.bootstrap(values_db, "v", "x", statistic="median")
        with pytest.raises(ValidationError):
            bootstrap.bootstrap(values_db, "v", "x", num_replicates=0)
        with pytest.raises(ValidationError):
            bootstrap.bootstrap(values_db, "v", "x", sample_fraction=0.0)
        with pytest.raises(ValidationError):
            bootstrap.bootstrap(values_db, "v", "x", confidence=1.5)
        with pytest.raises(ValidationError):
            bootstrap.bootstrap(values_db, "missing", "x")

    def test_empty_column_rejected(self):
        db = Database()
        db.create_table("v", [("x", "double precision")])
        with pytest.raises(ValidationError):
            bootstrap.bootstrap(db, "v", "x")
