"""Tests for sketches (Count-Min, FM), quantiles and the profile module."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Database
from repro.errors import ValidationError
from repro.methods import profile, quantiles
from repro.methods.sketches import CountMinSketch, FMSketch, count_distinct, install_countmin, install_fm, sketch_column


class TestCountMinSketch:
    def test_never_underestimates(self):
        sketch = CountMinSketch.empty(eps=0.01, delta=0.01)
        values = [1] * 100 + [2] * 50 + [3] * 10
        for value in values:
            sketch.add(value)
        assert sketch.estimate(1) >= 100
        assert sketch.estimate(2) >= 50
        assert sketch.estimate(3) >= 10
        assert sketch.total == 160

    def test_error_bound_holds_for_skewed_stream(self):
        sketch = CountMinSketch.empty(eps=0.01, delta=0.01)
        rng = np.random.default_rng(0)
        stream = rng.zipf(1.5, size=5000) % 500
        true_counts = {}
        for value in stream:
            sketch.add(int(value))
            true_counts[int(value)] = true_counts.get(int(value), 0) + 1
        bound = sketch.error_bound()
        for value, count in true_counts.items():
            assert count <= sketch.estimate(value) <= count + bound + 1

    def test_merge_equals_union_stream(self):
        a = CountMinSketch.empty(eps=0.05, delta=0.05)
        b = CountMinSketch.empty(eps=0.05, delta=0.05)
        for i in range(50):
            a.add(i % 7)
            b.add(i % 5)
        merged = a.merge(b)
        combined = CountMinSketch.empty(eps=0.05, delta=0.05)
        for i in range(50):
            combined.add(i % 7)
            combined.add(i % 5)
        np.testing.assert_array_equal(merged.counters, combined.counters)

    def test_shape_mismatch_merge_rejected(self):
        with pytest.raises(ValidationError):
            CountMinSketch.empty(eps=0.1, delta=0.1).merge(CountMinSketch.empty(eps=0.01, delta=0.1))

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            CountMinSketch.empty(eps=0.0, delta=0.5)

    def test_sql_aggregate(self, numbers_db):
        sketch = sketch_column(numbers_db, "t", "grp", eps=0.05, delta=0.05)
        assert sketch.estimate("b") >= 3
        assert sketch.estimate("a") >= 2

    def test_sql_aggregate_parallel_matches_serial(self):
        values = [(i % 13,) for i in range(600)]
        estimates = []
        for segments in (1, 6):
            db = Database(num_segments=segments)
            db.create_table("v", [("x", "integer")])
            db.load_rows("v", values)
            install_countmin(db, eps=0.02, delta=0.02)
            sketch = db.query_scalar("SELECT cmsketch(x) FROM v")
            estimates.append([sketch.estimate(value) for value in range(13)])
        assert estimates[0] == estimates[1]


class TestFMSketch:
    def test_estimate_within_expected_error(self):
        sketch = FMSketch.empty(num_maps=64)
        for i in range(3000):
            sketch.add(f"value-{i % 1000}")
        estimate = sketch.estimate()
        assert 600 <= estimate <= 1600  # FM typical error is ~10-30% at 64 maps

    def test_merge_is_union(self):
        a = FMSketch.empty(32)
        b = FMSketch.empty(32)
        for i in range(100):
            a.add(i)
        for i in range(50, 150):
            b.add(i)
        merged = a.merge(b)
        assert merged.estimate() >= max(a.estimate(), b.estimate()) * 0.9

    def test_distinct_count_in_sql(self, db4):
        db4.create_table("v", [("x", "integer")])
        db4.load_rows("v", [(i % 200,) for i in range(2000)])
        estimate = count_distinct(db4, "v", "x")
        assert 120 <= estimate <= 320

    def test_mismatched_merge_rejected(self):
        with pytest.raises(ValidationError):
            FMSketch.empty(16).merge(FMSketch.empty(32))


class TestQuantiles:
    @pytest.fixture
    def values_db(self, db4):
        rng = np.random.default_rng(1)
        values = rng.normal(loc=10.0, scale=2.0, size=3000)
        db4.create_table("v", [("x", "double precision")])
        db4.load_rows("v", [(float(v),) for v in values])
        db4.quantile_values = values  # type: ignore[attr-defined]
        return db4

    def test_exact_quantile_matches_numpy(self, values_db):
        values = values_db.quantile_values
        for fraction in (0.0, 0.25, 0.5, 0.9, 1.0):
            expected = float(np.quantile(values, fraction))
            assert quantiles.exact_quantile(values_db, "v", "x", fraction) == pytest.approx(expected, rel=1e-9)

    def test_exact_quantiles_batch(self, values_db):
        values = values_db.quantile_values
        result = quantiles.exact_quantiles(values_db, "v", "x", [0.1, 0.5, 0.9])
        np.testing.assert_allclose(result, np.quantile(values, [0.1, 0.5, 0.9]), rtol=1e-9)

    def test_approximate_quantiles_close_to_exact(self, values_db):
        values = values_db.quantile_values
        approx = quantiles.approximate_quantiles(values_db, "v", "x", [0.25, 0.5, 0.75])
        exact = np.quantile(values, [0.25, 0.5, 0.75])
        np.testing.assert_allclose(approx, exact, atol=0.3)

    def test_nulls_are_ignored(self, db):
        db.create_table("v", [("x", "double precision")])
        db.load_rows("v", [(1.0,), (None,), (3.0,)])
        assert quantiles.exact_quantile(db, "v", "x", 0.5) == 2.0

    def test_invalid_fraction_rejected(self, values_db):
        with pytest.raises(ValidationError):
            quantiles.exact_quantile(values_db, "v", "x", 1.5)

    def test_empty_column_rejected(self, db):
        db.create_table("v", [("x", "double precision")])
        with pytest.raises(ValidationError):
            quantiles.exact_quantile(db, "v", "x", 0.5)

    @given(fractions=st.lists(st.floats(0, 1), min_size=1, max_size=5))
    @settings(max_examples=20, deadline=None)
    def test_quantiles_are_monotone(self, fractions):
        db = Database()
        rng = np.random.default_rng(7)
        db.create_table("v", [("x", "double precision")])
        db.load_rows("v", [(float(v),) for v in rng.normal(size=300)])
        ordered = sorted(fractions)
        results = quantiles.exact_quantiles(db, "v", "x", ordered)
        assert all(a <= b + 1e-12 for a, b in zip(results, results[1:]))


class TestProfile:
    def test_profiles_every_column(self, numbers_db):
        result = profile.profile(numbers_db, "t", approximate_distinct=False)
        assert result.row_count == 6
        assert {c.name for c in result.columns} == {"id", "grp", "value"}
        value_profile = result.column("value")
        assert value_profile.non_null_count == 5
        assert value_profile.null_fraction == pytest.approx(1 / 6)
        assert value_profile.min_value == 1.0 and value_profile.max_value == 6.0
        assert value_profile.mean == pytest.approx(3.2)
        grp_profile = result.column("grp")
        assert grp_profile.distinct_count == 3
        assert grp_profile.min_length == 1

    def test_approximate_distinct_uses_sketch(self, regression_db):
        result = profile.profile(regression_db, "regr", approximate_distinct=True)
        id_profile = result.column("id")
        assert 200 <= id_profile.distinct_count <= 700  # 400 true distinct values

    def test_array_columns_are_skipped(self, regression_db):
        result = profile.profile(regression_db, "regr")
        x_profile = result.column("x")
        assert np.isnan(x_profile.distinct_count)
        assert x_profile.mean is None

    def test_as_rows_output(self, numbers_db):
        rows = profile.profile(numbers_db, "t", approximate_distinct=False).as_rows()
        assert len(rows) == 3
        assert {"column", "type", "non_null", "distinct"} <= set(rows[0])

    def test_empty_table(self, db):
        db.create_table("e", [("v", "double precision")])
        result = profile.profile(db, "e")
        assert result.row_count == 0
        assert result.column("v").non_null_count == 0

    def test_missing_column_lookup_raises(self, numbers_db):
        result = profile.profile(numbers_db, "t", approximate_distinct=False)
        with pytest.raises(ValidationError):
            result.column("missing")
