"""Tests for k-means clustering: both assignment strategies, seeding, convergence."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.methods import kmeans


def match_centroids(found, true):
    """Greedy matching distance between found and true centroids."""
    found = list(found)
    total = 0.0
    for target in true:
        distances = [float(np.linalg.norm(candidate - target)) for candidate in found]
        index = int(np.argmin(distances))
        total += distances[index]
        found.pop(index)
    return total / len(true)


class TestTraining:
    def test_recovers_blob_centroids(self, points_db):
        result = kmeans.train(points_db, "pts", k=3, seed=1)
        assert result.centroids.shape == (3, 2)
        assert match_centroids(result.centroids, points_db.blob_centroids) < 0.5
        assert result.converged

    def test_objective_is_non_increasing(self, points_db):
        result = kmeans.train(points_db, "pts", k=3, seed=2)
        history = result.objective_history
        assert all(later <= earlier + 1e-6 for earlier, later in zip(history, history[1:]))

    def test_explicit_and_implicit_strategies_agree(self, points_db):
        implicit = kmeans.train(points_db, "pts", k=3, seed=3, assignment_strategy="implicit")
        explicit = kmeans.train(points_db, "pts", k=3, seed=3, assignment_strategy="explicit")
        assert implicit.objective == pytest.approx(explicit.objective, rel=0.05)
        assert explicit.assignment_strategy == "explicit"

    def test_explicit_strategy_stores_assignments(self, points_db):
        kmeans.train(points_db, "pts", k=3, seed=4, assignment_strategy="explicit")
        unassigned = points_db.query_scalar(
            "SELECT count(*) FROM pts WHERE centroid_id IS NULL"
        )
        assert unassigned == 0
        distinct = points_db.query_scalar("SELECT count(DISTINCT centroid_id) FROM pts")
        assert distinct == 3

    def test_random_seeding(self, points_db):
        result = kmeans.train(points_db, "pts", k=3, seeding="random", seed=5)
        assert result.centroids.shape == (3, 2)

    def test_assign_labels_every_row(self, points_db):
        result = kmeans.train(points_db, "pts", k=3, seed=6)
        assignments = kmeans.assign(points_db, result, "pts")
        assert len(assignments) == 300
        assert {row["cluster_id"] for row in assignments} <= {0, 1, 2}

    def test_assignments_match_generating_labels(self, points_db):
        result = kmeans.train(points_db, "pts", k=3, seed=7)
        assignments = kmeans.assign(points_db, result, "pts")
        found = np.asarray([row["cluster_id"] for row in assignments])
        true = points_db.blob_labels
        # Cluster ids are arbitrary; check that each found cluster is (almost) pure.
        for cluster in range(3):
            members = true[found == cluster]
            if len(members) == 0:
                continue
            majority = np.bincount(members).max() / len(members)
            assert majority > 0.9

    def test_k_equals_one(self, points_db):
        result = kmeans.train(points_db, "pts", k=1, seed=8)
        np.testing.assert_allclose(
            result.centroids[0], points_db.blob_points.mean(axis=0), atol=1e-6
        )


class TestValidation:
    def test_invalid_k(self, points_db):
        with pytest.raises(ValidationError):
            kmeans.train(points_db, "pts", k=0)
        with pytest.raises(ValidationError):
            kmeans.train(points_db, "pts", k=1000)

    def test_invalid_strategy_and_seeding(self, points_db):
        with pytest.raises(ValidationError):
            kmeans.train(points_db, "pts", k=2, assignment_strategy="magic")
        with pytest.raises(ValidationError):
            kmeans.train(points_db, "pts", k=2, seeding="magic")

    def test_missing_table(self, db):
        with pytest.raises(ValidationError):
            kmeans.train(db, "nope", k=2)
