"""Table 2: the six models implemented through the single SGD/IGD abstraction.

One benchmark per Table 2 row; each asserts that the shared driver actually
optimizes the objective (the per-epoch loss decreases) — the reproduction of
the section's claim that one abstraction covers all six models.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database
from repro.convex import (
    train_crf_labeling,
    train_lasso,
    train_least_squares,
    train_logistic,
    train_recommendation,
    train_svm,
)
from repro.datasets import (
    load_logistic_table,
    load_regression_table,
    make_logistic,
    make_ratings,
    make_regression,
    make_tag_corpus,
)


@pytest.fixture(scope="module")
def table2_db():
    database = Database(num_segments=4)
    regression = make_regression(1200, 5, seed=81)
    load_regression_table(database, "regr", regression)
    classification = make_logistic(1200, 5, seed=82, labels_plus_minus=True)
    load_logistic_table(database, "classif", classification)
    ratings = make_ratings(40, 30, 4, density=0.3, seed=83)
    database.create_table(
        "ratings",
        [("user_id", "integer"), ("item_id", "integer"), ("rating", "double precision")],
    )
    database.load_rows("ratings", ratings)
    return database


def _record(benchmark, result):
    benchmark.extra_info["objective"] = result.objective_name
    benchmark.extra_info["epochs"] = result.num_epochs
    benchmark.extra_info["initial_loss"] = result.initial_loss
    benchmark.extra_info["final_loss"] = result.final_loss
    benchmark.extra_info["loss_decrease"] = result.loss_decrease()


def test_least_squares(benchmark, table2_db):
    result = benchmark.pedantic(
        lambda: train_least_squares(table2_db, "regr", max_epochs=10), rounds=1, iterations=1
    )
    _record(benchmark, result)
    assert result.loss_decrease() > 0.5


def test_lasso(benchmark, table2_db):
    result = benchmark.pedantic(
        lambda: train_lasso(table2_db, "regr", mu=0.1, max_epochs=10), rounds=1, iterations=1
    )
    _record(benchmark, result)
    assert result.final_loss < result.initial_loss


def test_logistic_regression(benchmark, table2_db):
    result = benchmark.pedantic(
        lambda: train_logistic(table2_db, "classif", max_epochs=10), rounds=1, iterations=1
    )
    _record(benchmark, result)
    assert result.final_loss < result.initial_loss


def test_svm_classification(benchmark, table2_db):
    result = benchmark.pedantic(
        lambda: train_svm(table2_db, "classif", max_epochs=10), rounds=1, iterations=1
    )
    _record(benchmark, result)
    assert result.final_loss < result.initial_loss


def test_recommendation(benchmark, table2_db):
    model = benchmark.pedantic(
        lambda: train_recommendation(table2_db, "ratings", rank=4, max_epochs=20, tolerance=1e-7),
        rounds=1, iterations=1,
    )
    _record(benchmark, model.result)
    assert model.result.final_loss < model.result.initial_loss


def test_crf_labeling(benchmark, table2_db):
    corpus = make_tag_corpus(30, seed=84)
    result = benchmark.pedantic(
        lambda: train_crf_labeling(table2_db, corpus, max_epochs=3), rounds=1, iterations=1
    )
    _record(benchmark, result)
    assert result.final_loss < result.initial_loss
