"""Table 3: statistical text-analysis methods (feature extraction, Viterbi, MCMC,
approximate string matching) exercised on the POS/NER/ER-style synthetic tasks."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database
from repro.datasets import make_name_variants, make_tag_corpus
from repro.text import (
    TokenFeatureExtractor,
    TrigramIndex,
    gibbs_sample,
    metropolis_hastings,
    train_crf,
    viterbi,
    viterbi_sql,
)


@pytest.fixture(scope="module")
def text_setup():
    corpus = make_tag_corpus(120, seed=91)
    train_corpus, test_corpus = corpus.split(0.8)
    model = train_crf(train_corpus, num_epochs=4, seed=92)
    return model, train_corpus, test_corpus


def test_text_feature_extraction(benchmark, text_setup):
    _, train_corpus, _ = text_setup
    extractor = TokenFeatureExtractor(dictionaries={"names": {"tebow", "denver", "smith"}})

    def run():
        return sum(
            len(features)
            for sequence in train_corpus.sequences
            for features in extractor.sequence_features(sequence.tokens)
        )

    total_features = benchmark(run)
    benchmark.extra_info["features_extracted"] = total_features
    assert total_features > train_corpus.token_count()


def test_viterbi_inference(benchmark, text_setup):
    model, _, test_corpus = text_setup

    def run():
        correct = total = 0
        for sequence in test_corpus.sequences:
            predicted, _ = viterbi(model, sequence.tokens)
            correct += sum(p == g for p, g in zip(predicted, sequence.labels))
            total += len(sequence)
        return correct / total

    accuracy = benchmark(run)
    benchmark.extra_info["token_accuracy"] = accuracy
    assert accuracy > 0.75


def test_viterbi_sql_macro_coordination(benchmark, text_setup):
    model, _, test_corpus = text_setup
    database = Database(num_segments=2)
    sentence = test_corpus.sequences[0]

    result = benchmark.pedantic(
        lambda: viterbi_sql(database, model, sentence.tokens), rounds=1, iterations=1
    )
    assert result[0] == viterbi(model, sentence.tokens)[0]


def test_mcmc_gibbs_inference(benchmark, text_setup):
    model, _, test_corpus = text_setup
    sentence = test_corpus.sequences[0]

    result = benchmark.pedantic(
        lambda: gibbs_sample(model, sentence.tokens, num_samples=150, burn_in=50, seed=93),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["map_confidence"] = float(np.mean([result.confidence(i) for i in range(len(sentence.tokens))]))
    assert len(result.map_labels) == len(sentence.tokens)


def test_mcmc_metropolis_hastings(benchmark, text_setup):
    model, _, test_corpus = text_setup
    sentence = test_corpus.sequences[1]
    result = benchmark.pedantic(
        lambda: metropolis_hastings(model, sentence.tokens, num_samples=200, burn_in=50, seed=94),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["acceptance_rate"] = result.acceptance_rate
    assert 0 < result.acceptance_rate <= 1


def test_approximate_string_matching(benchmark):
    database = Database(num_segments=2)
    pairs = make_name_variants(variants_per_name=8, seed=95)
    database.create_table("mentions", [("doc_id", "integer"), ("text", "text")])
    database.load_rows("mentions", [(i, mention) for i, (_, mention) in enumerate(pairs)])
    index = TrigramIndex(database, "mentions")
    index.build()

    def run():
        return index.search("Tim Tebow", threshold=0.4)

    matches = benchmark(run)
    benchmark.extra_info["matches_found"] = len(matches)
    assert matches and matches[0].similarity == 1.0
