"""Throughput-regression gate for the engine microbenchmarks.

Compares a fresh ``BENCH_engine.json`` (written by
``python benchmarks/bench_engine_micro.py``) against the committed baseline
``benchmarks/BENCH_engine_baseline.json`` and exits nonzero when any metric
regresses by more than the threshold (default 20%).

Usage::

    python benchmarks/bench_engine_micro.py          # writes BENCH_engine.json
    python benchmarks/check_regression.py            # compares vs baseline

Baselines are machine-specific: on a new machine (or after an intentional
performance change) refresh with
``python benchmarks/bench_engine_micro.py --write-baseline`` and commit the
result.  Absolute rows/sec numbers are only comparable on the machine that
produced the baseline; the *ratio* is what this gate enforces.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
DEFAULT_CURRENT = BENCH_DIR / "BENCH_engine.json"
DEFAULT_BASELINE = BENCH_DIR / "BENCH_engine_baseline.json"
#: Allowed slowdown before the gate trips: new >= (1 - threshold) * baseline.
DEFAULT_THRESHOLD = 0.20


def load_metrics(path: Path) -> dict:
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(
            f"error: {path} not found — run `python benchmarks/bench_engine_micro.py`"
            + (" --write-baseline" if path.name.endswith("baseline.json") else "")
        )
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise SystemExit(f"error: {path} has no 'metrics' object")
    return metrics


def compare(current: dict, baseline: dict, threshold: float) -> int:
    """Print a comparison table; return the number of regressed metrics."""
    regressions = 0
    width = max(len(name) for name in sorted(set(baseline) | set(current)))
    print(f"{'metric'.ljust(width)}  {'baseline':>14}  {'current':>14}  {'ratio':>7}  status")
    for name in sorted(baseline):
        base = float(baseline[name])
        if name not in current:
            print(f"{name.ljust(width)}  {base:>14,.0f}  {'MISSING':>14}  {'':>7}  FAIL")
            regressions += 1
            continue
        new = float(current[name])
        ratio = new / base if base > 0 else float("inf")
        regressed = ratio < (1.0 - threshold)
        status = "FAIL" if regressed else "ok"
        print(f"{name.ljust(width)}  {base:>14,.0f}  {new:>14,.0f}  {ratio:>6.2f}x  {status}")
        regressions += int(regressed)
    for name in sorted(set(current) - set(baseline)):
        print(f"{name.ljust(width)}  {'(new metric)':>14}  {float(current[name]):>14,.0f}")
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", type=Path, default=DEFAULT_CURRENT)
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="maximum tolerated fractional slowdown (default 0.20 = 20%%)",
    )
    args = parser.parse_args(argv)
    regressions = compare(
        load_metrics(args.current), load_metrics(args.baseline), args.threshold
    )
    if regressions:
        print(f"\n{regressions} metric(s) regressed more than {args.threshold:.0%}")
        return 1
    print(f"\nno metric regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
