"""Engine microbenchmarks: compiled vs interpreted execution tiers.

Isolates the three costs the query-compilation layer removes —

* per-row ``RowContext`` dict construction,
* tree-walking ``Expression.evaluate`` dispatch, and
* one Python transition call per row in the aggregate fold —

and reports each as rows/second so the compiled and interpreted paths are
directly comparable.  Two entry points:

* ``pytest benchmarks/bench_engine_micro.py`` — pytest-benchmark targets
  following the Figure 4/5 harness conventions (rows/sec in ``extra_info``).
* ``python benchmarks/bench_engine_micro.py [--output PATH]`` — standalone
  run that writes ``BENCH_engine.json``, the file
  ``benchmarks/check_regression.py`` diffs against the committed baseline.

Row count follows ``REPRO_BENCH_ROWS`` like the rest of the harness.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from harness import DEFAULT_ROWS

from repro import Database
from repro.engine.aggregates import builtin_aggregates
from repro.engine.compile import ColumnLayout, compile_expression
from repro.engine.executor import _Relation
from repro.engine.parser import parse_statement
from repro.engine.segments import SegmentedAggregator
from repro.engine.vectorized import ColumnBatch

#: Microbenchmarks run this many rows (scaled with the harness default).
MICRO_ROWS = max(DEFAULT_ROWS * 10, 40_000)


def _make_database(compiled: bool, rows: int, *, workers: int = 0, segments: int = 4) -> Database:
    database = Database(num_segments=segments, compiled_execution=compiled, parallel=workers)
    database.create_table(
        "m",
        [("id", "integer"), ("a", "double precision"), ("b", "double precision")],
        distributed_by="id",
    )
    rng = np.random.default_rng(5)
    data = rng.normal(size=(rows, 2))
    database.load_rows("m", [(i, float(x), float(y)) for i, (x, y) in enumerate(data)])
    return database


def _expression_fixture(database: Database):
    """The parsed filter expression plus relation machinery for eval benchmarks."""
    statement = parse_statement("SELECT id FROM m WHERE a + b * 2.0 > 0.5")
    executor = database.executor
    relation = executor._scan_from_item(statement.from_items[0], None)
    return statement.where, executor, relation


def _time_rows_per_sec(
    total_rows: int, func: Callable[[], object], repeats: int = 3
) -> Tuple[float, object]:
    """Best-of-N throughput: the minimum elapsed time is the noise-robust
    estimator on a shared (or single-core) machine, and the regression gate
    needs stable numbers."""
    best = float("inf")
    result: object = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return total_rows / best if best > 0 else float("inf"), result


#: Metrics that only exist when ``--workers`` is given; excluded from the
#: committed baseline so the regression gate stays comparable across runs
#: with and without the parallel tier.
PARALLEL_ONLY_METRICS = frozenset(
    {
        "query_unfiltered_serial_rows_per_sec",
        "query_unfiltered_parallel_rows_per_sec",
        "parallel_measured_speedup",
        "groupby_parallel_measured_speedup",
    }
)


def _baseline_metric(name: str) -> bool:
    """Whether a metric belongs in the committed regression baseline.

    Parallel metrics (machine/worker dependent) and the opt-in ``--joins`` /
    ``--indexes`` / ``--columnar`` metrics (absent from default runs, so the
    gate would flag them MISSING) stay out.
    """
    return name not in PARALLEL_ONLY_METRICS and not name.startswith(
        ("join_", "index_", "columnar_", "compression_")
    )


def _make_groupby_database(rows: int, *, workers: int = 0, segments: int = 4) -> Database:
    """A table shaped for the GROUP BY patterns: one low-cardinality key
    (8 groups — the two-phase dispatch sweet spot) and one high-cardinality
    key (rows/4 groups — the shape the planner keeps in-process)."""
    database = Database(num_segments=segments, compiled_execution=True, parallel=workers)
    database.create_table(
        "gb",
        [
            ("id", "integer"),
            ("grp_low", "integer"),
            ("grp_high", "integer"),
            ("a", "double precision"),
        ],
        distributed_by="id",
    )
    rng = np.random.default_rng(9)
    values = rng.normal(size=rows)
    high_cardinality = max(rows // 4, 1)
    database.load_rows(
        "gb",
        [(i, i % 8, i % high_cardinality, float(v)) for i, v in enumerate(values)],
    )
    return database


def _run_groupby_suite(
    metrics: Dict[str, float], rows: int, *, workers: int, repeats: int
) -> None:
    """The ``--groupby`` pattern: grouped-aggregation throughput at both ends
    of the cardinality spectrum, plus (with workers) the measured speedup of
    the two-phase grouped dispatch on the low-cardinality shape."""
    low_card = "SELECT grp_low, count(*), sum(a), avg(a) FROM gb GROUP BY grp_low"
    high_card = "SELECT grp_high, count(*), sum(a) FROM gb GROUP BY grp_high"
    # The serial baseline must share the parallel database's segment count:
    # group output order and merge order (hence float results) depend on the
    # segmentation, and the speedup ratio is only meaningful at equal counts.
    segments = max(4, workers)
    database = _make_groupby_database(rows, segments=segments)
    metrics["groupby_low_card_rows_per_sec"], low_rows = _time_rows_per_sec(
        rows, repeats=repeats, func=lambda: database.execute(low_card).rows
    )
    assert len(low_rows) == 8 and sum(row[1] for row in low_rows) == rows
    metrics["groupby_high_card_rows_per_sec"], high_rows = _time_rows_per_sec(
        rows, repeats=repeats, func=lambda: database.execute(high_card).rows
    )
    assert len(high_rows) == max(rows // 4, 1)
    if workers > 0:
        parallel_db = _make_groupby_database(rows, workers=workers, segments=segments)
        parallel_db.ensure_parallel_workers()
        parallel_rate, parallel_rows = _time_rows_per_sec(
            rows, repeats=repeats, func=lambda: parallel_db.execute(low_card).rows
        )
        assert parallel_rows == low_rows
        assert parallel_db.last_stats.executed_parallel, "grouped dispatch did not engage"
        metrics["groupby_parallel_measured_speedup"] = (
            parallel_rate / metrics["groupby_low_card_rows_per_sec"]
        )
        parallel_db.close()


def _make_join_database(rows: int, right_rows: int, *, hash_joins: bool = True) -> Database:
    """Two equi-joinable tables: ``jl`` (~2 rows per key) and ``jr`` (unique
    keys, half of them matching), both distributed by the join key."""
    database = Database(num_segments=4, hash_joins=hash_joins)
    database.create_table(
        "jl",
        [("id", "integer"), ("k", "integer"), ("a", "double precision")],
        distributed_by="k",
    )
    database.create_table(
        "jr", [("k", "integer"), ("b", "double precision")], distributed_by="k"
    )
    rng = np.random.default_rng(17)
    left_values = rng.normal(size=rows)
    database.load_rows(
        "jl", [(i, i % max(rows // 2, 1), float(v)) for i, v in enumerate(left_values)]
    )
    right_values = rng.normal(size=right_rows)
    database.load_rows("jr", [(i, float(v)) for i, v in enumerate(right_values)])
    return database


def _load_viterbi_trio(database: Database, labels: int) -> int:
    """The Viterbi DP-step tables (factors/paths/transitions); returns base rows."""
    positions = 3
    database.create_table(
        "vf",
        [("position", "integer"), ("label", "integer"), ("emission", "double precision")],
    )
    database.load_rows(
        "vf",
        [(p, l, float(p + l) / 7.0) for p in range(positions) for l in range(labels)],
    )
    database.create_table(
        "vp", [("position", "integer"), ("label", "integer"), ("score", "double precision")]
    )
    database.load_rows("vp", [(0, l, float(l) * 0.3) for l in range(labels)])
    database.create_table(
        "vt",
        [("prev_label", "integer"), ("label", "integer"), ("weight", "double precision")],
    )
    database.load_rows(
        "vt",
        [(a, b, float(a * labels + b) / 11.0) for a in range(labels) for b in range(labels)],
    )
    return positions * labels + labels + labels * labels


#: The Viterbi DP-step query exactly as ``repro.text.viterbi.viterbi_sql``
#: issues it per token position (modulo table names).
_VITERBI_STEP = (
    "SELECT f.position, f.label, max(p.score + t.weight + f.emission) "
    "FROM vf f, vp p, vt t "
    "WHERE f.position = 1 AND p.position = 0 "
    "AND t.prev_label = p.label AND t.label = f.label "
    "GROUP BY f.position, f.label"
)


def _run_join_suite(metrics: Dict[str, float], rows: int, *, repeats: int) -> None:
    """The ``--joins`` pattern: hash-join vs nested-loop rows/sec.

    The 2-way equi-join runs the hash path at ``rows`` per side and the
    nested-loop baseline at ``min(rows // 5, 2000)`` per side — the nested
    loop is O(N·M), so its measured rate at the smaller size *overstates*
    what it would achieve at full size, making the reported speedup a
    conservative lower bound.  The Viterbi-shaped 3-way join runs both
    strategies at identical sizes (the nested baseline materializes the full
    Cartesian product, which bounds how large that can be).
    """
    join_query = "SELECT count(*), sum(l.a + r.b) FROM jl l, jr r WHERE l.k = r.k"

    hash_db = _make_join_database(rows, rows)
    base_rows = rows + rows
    metrics["join_hash_2way_rows_per_sec"], hash_result = _time_rows_per_sec(
        base_rows, repeats=repeats, func=lambda: hash_db.execute(join_query).rows
    )
    assert "hash" in (hash_db.last_stats.join_strategy or ""), "hash join did not engage"
    assert hash_db.last_stats.rows_scanned == base_rows

    nested_rows = max(min(rows // 5, 2_000), 100)
    nested_db = _make_join_database(nested_rows, nested_rows, hash_joins=False)
    metrics["join_nested_2way_rows_per_sec"], _ = _time_rows_per_sec(
        nested_rows * 2, repeats=1, func=lambda: nested_db.execute(join_query).rows
    )
    # Sanity: both strategies agree at the nested baseline's size.
    check_db = _make_join_database(nested_rows, nested_rows)
    assert check_db.execute(join_query).rows == nested_db.execute(join_query).rows
    metrics["join_2way_speedup"] = (
        metrics["join_hash_2way_rows_per_sec"] / metrics["join_nested_2way_rows_per_sec"]
    )

    labels = max(min(rows // 500, 24), 8)
    viterbi_hash = Database(num_segments=4)
    viterbi_base = _load_viterbi_trio(viterbi_hash, labels)
    metrics["join_hash_viterbi3_rows_per_sec"], hash_step = _time_rows_per_sec(
        viterbi_base, repeats=repeats, func=lambda: viterbi_hash.execute(_VITERBI_STEP).rows
    )
    viterbi_nested = Database(num_segments=4, hash_joins=False)
    _load_viterbi_trio(viterbi_nested, labels)
    metrics["join_nested_viterbi3_rows_per_sec"], nested_step = _time_rows_per_sec(
        viterbi_base, repeats=1, func=lambda: viterbi_nested.execute(_VITERBI_STEP).rows
    )
    assert sorted(hash_step) == sorted(nested_step)
    metrics["join_viterbi3_speedup"] = (
        metrics["join_hash_viterbi3_rows_per_sec"]
        / metrics["join_nested_viterbi3_rows_per_sec"]
    )


def _make_index_database(rows: int, *, use_indexes: bool = True) -> Database:
    """A table shaped for the access-path sweep: unique ``pk`` (point lookups
    and range predicates of any selectivity are exact row-count fractions)."""
    database = Database(num_segments=4, use_indexes=use_indexes)
    database.create_table(
        "ix",
        [("pk", "integer"), ("k", "integer"), ("v", "double precision")],
        distributed_by="pk",
    )
    rng = np.random.default_rng(23)
    values = rng.normal(size=rows)
    database.load_rows("ix", [(i, i % 50, float(x)) for i, x in enumerate(values)])
    if use_indexes:
        database.execute("CREATE INDEX ix_pk_hash ON ix USING hash (pk)")
        database.execute("CREATE INDEX ix_pk ON ix (pk)")
        database.execute("ANALYZE ix")
    return database


#: Range-predicate hit rates for the ``--indexes`` selectivity sweep, as
#: fractions of the table (0.001% → 50%).
INDEX_SWEEP_FRACTIONS = (0.00001, 0.0001, 0.001, 0.01, 0.1, 0.5)


def _run_index_suite(metrics: Dict[str, float], rows: int, *, repeats: int) -> None:
    """The ``--indexes`` pattern: index-probe vs sequential-scan rows/sec.

    Point lookup (``WHERE pk = const``, the acceptance shape: EXPLAIN must
    show an index-scan node and the probe must beat the scan by a wide
    margin) plus a range-selectivity sweep from 0.001% to 50% hit rate —
    at the high-selectivity end the cost model is expected to *decline* the
    index and match the scan, which the sweep makes visible.
    """
    indexed = _make_index_database(rows)
    scan = _make_index_database(rows, use_indexes=False)

    target = rows // 2
    point_query = f"SELECT v FROM ix WHERE pk = {target}"
    explain_text = "\n".join(
        row[0] for row in indexed.execute("EXPLAIN " + point_query).rows
    )
    assert "Index Scan" in explain_text, explain_text

    metrics["index_point_lookup_rows_per_sec"], hit = _time_rows_per_sec(
        rows, repeats=repeats, func=lambda: indexed.execute(point_query).rows
    )
    assert indexed.last_stats.scan_details[0].access == "index"
    assert indexed.last_stats.rows_scanned == 1
    metrics["index_point_scan_rows_per_sec"], scan_hit = _time_rows_per_sec(
        rows, repeats=repeats, func=lambda: scan.execute(point_query).rows
    )
    assert hit == scan_hit
    metrics["index_point_lookup_speedup"] = (
        metrics["index_point_lookup_rows_per_sec"] / metrics["index_point_scan_rows_per_sec"]
    )

    for fraction in INDEX_SWEEP_FRACTIONS:
        hits = max(1, int(rows * fraction))
        query = f"SELECT count(*) FROM ix WHERE pk >= 0 AND pk < {hits}"
        label = f"{fraction * 100:g}pct"
        metrics[f"index_range_{label}_indexed_rows_per_sec"], left = _time_rows_per_sec(
            rows, repeats=repeats, func=lambda: indexed.execute(query).rows
        )
        access = indexed.last_stats.scan_details[0].access
        metrics[f"index_range_{label}_scan_rows_per_sec"], right = _time_rows_per_sec(
            rows, repeats=1, func=lambda: scan.execute(query).rows
        )
        assert left == right and left[0][0] == hits
        # Selective probes must take the index; at 50% the cost model is
        # expected to fall back to the scan (both shapes are load-bearing).
        if fraction <= 0.01:
            assert access == "index", (fraction, access)


def _make_columnar_database(rows: int, *, columnar: bool) -> Database:
    """The ``--columnar`` fixture: a numeric table whose WHERE clauses sit
    squarely in the vector-compilable subset (``u`` is uniform on [0, 1), so
    ``u < 0.1`` is the 10%-selectivity acceptance shape)."""
    database = Database(num_segments=4, columnar_storage=columnar)
    database.create_table(
        "cs",
        [
            ("id", "integer"),
            ("k", "integer"),
            ("u", "double precision"),
            ("v", "double precision"),
        ],
        distributed_by="id",
    )
    rng = np.random.default_rng(17)
    u = rng.random(rows)
    v = rng.normal(size=rows)
    database.load_rows(
        "cs", [(i, i % 97, float(x), float(y)) for i, (x, y) in enumerate(zip(u, v))]
    )
    return database


def _run_columnar_suite(metrics: Dict[str, float], rows: int, *, repeats: int) -> None:
    """The ``--columnar`` pattern: bitmap-vectorized WHERE over packed
    columns vs the row-tuple storage running the same statements.

    The acceptance shape is the 10%-selectivity filtered aggregate scan
    (``count(*) + sum`` over ``u < 0.1``), where the bitmap path must beat
    the row-tuple path by at least 3×.  Filtered projection exercises late
    materialization; the DML pair reports bitmap DELETE (complement-keep,
    no row tuples) and vectorized-WHERE UPDATE (the bitmap picks the touched
    positions and only those rows are rewritten in place).
    """
    columnar = _make_columnar_database(rows, columnar=True)
    rowstore = _make_columnar_database(rows, columnar=False)

    query = "SELECT count(*), sum(v) FROM cs WHERE u < 0.1"
    metrics["columnar_filtered_agg_rows_per_sec"], fast = _time_rows_per_sec(
        rows, repeats=repeats, func=lambda: columnar.execute(query).rows
    )
    stats = columnar.last_stats
    assert stats.where_vectorized, "bitmap WHERE did not engage"
    assert stats.rows_scanned == rows, "rows_scanned must be the bitmap width"
    assert stats.bitmap_selectivity is not None and 0.05 < stats.bitmap_selectivity < 0.15
    metrics["columnar_filtered_agg_rowstore_rows_per_sec"], slow = _time_rows_per_sec(
        rows, repeats=repeats, func=lambda: rowstore.execute(query).rows
    )
    assert not rowstore.last_stats.where_vectorized
    assert fast[0][0] == slow[0][0] and fast[0][1] == slow[0][1]
    speedup = (
        metrics["columnar_filtered_agg_rows_per_sec"]
        / metrics["columnar_filtered_agg_rowstore_rows_per_sec"]
    )
    metrics["columnar_filtered_agg_speedup"] = speedup
    if rows >= MICRO_ROWS:
        # The acceptance criterion (smoke runs are too small to be meaningful).
        assert speedup >= 3.0, f"filtered aggregate speedup {speedup:.2f}x < 3x"

    select = "SELECT id, v FROM cs WHERE u < 0.1"
    metrics["columnar_filtered_select_rows_per_sec"], picked = _time_rows_per_sec(
        rows, repeats=repeats, func=lambda: columnar.execute(select).rows
    )
    assert columnar.last_stats.where_vectorized
    metrics["columnar_filtered_select_rowstore_rows_per_sec"], picked_slow = _time_rows_per_sec(
        rows, repeats=repeats, func=lambda: rowstore.execute(select).rows
    )
    assert list(picked) == list(picked_slow)
    metrics["columnar_filtered_select_speedup"] = (
        metrics["columnar_filtered_select_rows_per_sec"]
        / metrics["columnar_filtered_select_rowstore_rows_per_sec"]
    )

    # UPDATE: the matched set is stable across repeats (the predicate column
    # is untouched), so repeated timing measures a steady state.
    update = "UPDATE cs SET v = v + 0.0 WHERE u < 0.1"
    metrics["columnar_update_rows_per_sec"], update_result = _time_rows_per_sec(
        rows, repeats=repeats, func=lambda: columnar.execute(update)
    )
    assert update_result.stats.where_vectorized
    metrics["columnar_update_rowstore_rows_per_sec"], update_slow = _time_rows_per_sec(
        rows, repeats=repeats, func=lambda: rowstore.execute(update)
    )
    assert update_result.rowcount == update_slow.rowcount

    # DELETE mutates, so time a single shot per storage on the same slice.
    delete = "DELETE FROM cs WHERE u >= 0.9"
    metrics["columnar_delete_rows_per_sec"], delete_result = _time_rows_per_sec(
        rows, repeats=1, func=lambda: columnar.execute(delete)
    )
    assert delete_result.stats.where_vectorized
    metrics["columnar_delete_rowstore_rows_per_sec"], delete_slow = _time_rows_per_sec(
        rows, repeats=1, func=lambda: rowstore.execute(delete)
    )
    assert delete_result.rowcount == delete_slow.rowcount


def _make_compression_database(rows: int, *, compression: bool) -> Database:
    """The ``--compression`` fixture: low-cardinality text columns.

    ``tag`` has 8 distinct values (the classic dimension-attribute shape)
    and ``name`` has 100 (so an equality hits ~1% of rows and a ``LIKE``
    prefix ~11%).  With ``compression=False`` the storage is still columnar
    but the text columns are plain object lists, so text predicates run on
    the row path — the honest before/after for dictionary encoding.
    """
    database = Database(num_segments=4, columnar_compression=compression)
    database.create_table(
        "ct",
        [
            ("id", "integer"),
            ("tag", "text"),
            ("name", "text"),
            ("v", "double precision"),
        ],
        distributed_by="id",
    )
    tags = ["red", "green", "blue", "cyan", "teal", "plum", "gray", "gold"]
    database.load_rows(
        "ct",
        [(i, tags[i % 8], f"cat_{i % 100}", float(i % 1000) / 10.0) for i in range(rows)],
    )
    return database


def _run_compression_suite(metrics: Dict[str, float], rows: int, *, repeats: int) -> None:
    """The ``--compression`` pattern: code-space text predicates and
    bitmap-aware UPDATE over dictionary-encoded columns vs the same
    statements on uncompressed (object-list) text columns.

    Acceptance shapes, asserted at full scale only: the text-filter trio
    (``=`` / ``IN`` / ``LIKE`` prefix) must beat the uncompressed row path
    by at least 5× — each predicate is evaluated once per *dictionary
    entry*, then resolved with one fancy-index over the int16 codes — and
    the 1%-selectivity UPDATE by at least 3×, since the bitmap rewrites
    only the matched positions in place instead of driving the predicate
    through per-row contexts.
    """
    compressed = _make_compression_database(rows, compression=True)
    plain = _make_compression_database(rows, compression=False)

    filters = [
        ("eq", "SELECT count(*), sum(v) FROM ct WHERE tag = 'blue'"),
        ("in", "SELECT count(*), sum(v) FROM ct WHERE tag IN ('red', 'teal', 'gold')"),
        ("like_prefix", "SELECT count(*), sum(v) FROM ct WHERE name LIKE 'cat_1%'"),
    ]
    for label, query in filters:
        metrics[f"compression_text_{label}_rows_per_sec"], fast = _time_rows_per_sec(
            rows, repeats=repeats, func=lambda q=query: compressed.execute(q).rows
        )
        assert compressed.last_stats.where_vectorized, f"{label}: dict path did not engage"
        assert compressed.last_stats.rows_scanned == rows
        metrics[f"compression_text_{label}_plain_rows_per_sec"], slow = _time_rows_per_sec(
            rows, repeats=repeats, func=lambda q=query: plain.execute(q).rows
        )
        assert not plain.last_stats.where_vectorized
        assert fast[0][0] == slow[0][0] and abs(fast[0][1] - slow[0][1]) < 1e-6
        speedup = (
            metrics[f"compression_text_{label}_rows_per_sec"]
            / metrics[f"compression_text_{label}_plain_rows_per_sec"]
        )
        metrics[f"compression_text_{label}_speedup"] = speedup
        if rows >= MICRO_ROWS:
            assert speedup >= 5.0, f"text {label} speedup {speedup:.2f}x < 5x"

    # UPDATE at 1% selectivity: the predicate column is untouched, so the
    # matched set is stable across repeats (steady-state timing).
    update = "UPDATE ct SET v = v + 1.0 WHERE name = 'cat_7'"
    metrics["compression_update_bitmap_rows_per_sec"], fast_update = _time_rows_per_sec(
        rows, repeats=repeats, func=lambda: compressed.execute(update)
    )
    assert fast_update.stats.where_vectorized
    metrics["compression_update_plain_rows_per_sec"], slow_update = _time_rows_per_sec(
        rows, repeats=repeats, func=lambda: plain.execute(update)
    )
    assert not slow_update.stats.where_vectorized
    assert fast_update.rowcount == slow_update.rowcount
    speedup = (
        metrics["compression_update_bitmap_rows_per_sec"]
        / metrics["compression_update_plain_rows_per_sec"]
    )
    metrics["compression_update_bitmap_speedup"] = speedup
    if rows >= MICRO_ROWS:
        assert speedup >= 3.0, f"bitmap UPDATE speedup {speedup:.2f}x < 3x"


def run_micro_suite(
    rows: int = MICRO_ROWS,
    *,
    workers: int = 0,
    repeats: int = 3,
    groupby: bool = False,
    joins: bool = False,
    indexes: bool = False,
    columnar: bool = False,
    compression: bool = False,
) -> Dict[str, float]:
    """All microbenchmark metrics, each in rows/second (higher is better).

    With ``workers > 0`` the suite additionally measures the *real* parallel
    tier — the same unfiltered aggregate scan executed serially and through a
    ``Database(parallel=workers)`` worker pool — and reports the measured
    (wall-clock, IPC included) speedup.  On a single-core machine expect a
    value below 1; the point of the metric is that it is measured, not
    simulated.  ``groupby`` adds the grouped-aggregation pattern at low and
    high group cardinality (and, with workers, the measured grouped-dispatch
    speedup).  ``joins`` adds the hash-vs-nested-loop join pattern (a 2-way
    equi-join and the Viterbi-shaped 3-way join).  ``columnar`` adds the
    bitmap-vectorized WHERE pattern: filtered aggregate / projection / DML
    throughput on columnar vs row-tuple storage.  ``compression`` adds the
    dictionary-encoding pattern: code-space text filters and bitmap-aware
    UPDATE on compressed vs uncompressed text columns.
    """
    database = _make_database(True, rows)
    where, executor, relation = _expression_fixture(database)
    metrics: Dict[str, float] = {}

    # -- context construction (the cost the compiled tier skips entirely) ----
    metrics["context_construction_rows_per_sec"], contexts = _time_rows_per_sec(
        rows, repeats=repeats, func=lambda: executor._make_contexts(relation, None)
    )

    # -- expression evaluation: interpreted tree walk vs compiled closure ----
    metrics["expression_eval_interpreted_rows_per_sec"], interpreted_hits = _time_rows_per_sec(
        rows, repeats=repeats, func=lambda: sum(1 for ctx in contexts if where.evaluate(ctx) is True)
    )
    layout = ColumnLayout(relation.context_keys())
    predicate = compile_expression(where, layout, executor._function_registry())
    assert predicate is not None
    metrics["expression_eval_compiled_rows_per_sec"], compiled_hits = _time_rows_per_sec(
        rows, repeats=repeats, func=lambda: sum(1 for row in relation.rows if predicate(row) is True)
    )
    assert interpreted_hits == compiled_hits

    # -- aggregate fold throughput: row-at-a-time vs batched kernel ----------
    sum_definition = next(d for d in builtin_aggregates() if d.name == "sum")
    column = [row[1] for row in relation.rows]
    stream_rows = [(value,) for value in column]
    aggregator = SegmentedAggregator(sum_definition)
    metrics["aggregate_fold_rows_per_sec"], folded = _time_rows_per_sec(
        rows, repeats=repeats, func=lambda: aggregator.runner.fold(stream_rows)
    )
    metrics["aggregate_batch_rows_per_sec"], batched = _time_rows_per_sec(
        rows, repeats=repeats, func=lambda: aggregator._fold_stream(ColumnBatch((column,)))
    )
    assert abs(folded - batched) <= 1e-6 * max(1.0, abs(folded))

    # -- end-to-end query throughput, both tiers -----------------------------
    query = "SELECT sum(a), avg(b), count(*) FROM m WHERE a > 0"
    metrics["query_compiled_rows_per_sec"], fast = _time_rows_per_sec(
        rows, repeats=repeats, func=lambda: database.execute(query).rows
    )
    interpreted_db = _make_database(False, rows)
    metrics["query_interpreted_rows_per_sec"], slow = _time_rows_per_sec(
        rows, repeats=repeats, func=lambda: interpreted_db.execute(query).rows
    )
    assert fast[0][2] == slow[0][2]

    # -- real parallel tier: measured (not simulated) speedup ----------------
    if workers > 0:
        scan = "SELECT sum(a), avg(b), count(*) FROM m"  # unfiltered aggregate scan
        metrics["query_unfiltered_serial_rows_per_sec"], serial_rows = _time_rows_per_sec(
            rows, repeats=repeats, func=lambda: database.execute(scan).rows
        )
        segments = max(4, workers)
        parallel_db = _make_database(True, rows, workers=workers, segments=segments)
        parallel_db.ensure_parallel_workers()  # spawn outside the timed region
        metrics["query_unfiltered_parallel_rows_per_sec"], parallel_rows = _time_rows_per_sec(
            rows, repeats=repeats, func=lambda: parallel_db.execute(scan).rows
        )
        assert parallel_rows[0][2] == serial_rows[0][2]
        assert parallel_db.last_stats.executed_parallel, "worker pool did not engage"
        metrics["parallel_measured_speedup"] = (
            metrics["query_unfiltered_parallel_rows_per_sec"]
            / metrics["query_unfiltered_serial_rows_per_sec"]
        )
        parallel_db.close()

    if groupby:
        _run_groupby_suite(metrics, rows, workers=workers, repeats=repeats)
    if joins:
        _run_join_suite(metrics, min(rows, 10_000), repeats=repeats)
    if indexes:
        # The acceptance shape is a 100k-row indexed table; smoke runs keep
        # their reduced row count.
        index_rows = max(rows, 100_000) if rows >= MICRO_ROWS else rows
        _run_index_suite(metrics, index_rows, repeats=repeats)
    if columnar:
        _run_columnar_suite(metrics, rows, repeats=repeats)
    if compression:
        # The acceptance shape is a 100k-row low-cardinality text table;
        # smoke runs keep their reduced row count.
        compression_rows = max(rows, 100_000) if rows >= MICRO_ROWS else rows
        _run_compression_suite(metrics, compression_rows, repeats=repeats)
    return metrics


def write_report(path: Path, metrics: Dict[str, float], *, rows: int = MICRO_ROWS) -> None:
    payload = {
        "benchmark": "engine_micro",
        "rows": rows,
        "unit": "rows_per_sec",
        "metrics": {name: round(value, 2) for name, value in metrics.items()},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# pytest-benchmark targets
# ---------------------------------------------------------------------------


def test_expression_eval_compiled_vs_interpreted(benchmark):
    database = _make_database(True, MICRO_ROWS)
    where, executor, relation = _expression_fixture(database)
    layout = ColumnLayout(relation.context_keys())
    predicate = compile_expression(where, layout, executor._function_registry())

    def run():
        return sum(1 for row in relation.rows if predicate(row) is True)

    hits = benchmark(run)
    contexts = executor._make_contexts(relation, None)
    assert hits == sum(1 for ctx in contexts if where.evaluate(ctx) is True)
    benchmark.extra_info["rows_per_sec"] = MICRO_ROWS / benchmark.stats.stats.mean


def test_aggregate_batch_vs_fold(benchmark):
    database = _make_database(True, MICRO_ROWS)
    relation = database.executor._scan_from_item(
        parse_statement("SELECT a FROM m").from_items[0], None
    )
    column = [row[1] for row in relation.rows]
    sum_definition = next(d for d in builtin_aggregates() if d.name == "sum")
    aggregator = SegmentedAggregator(sum_definition)

    batched = benchmark(lambda: aggregator._fold_stream(ColumnBatch((column,))))
    assert batched == sum(column)
    benchmark.extra_info["rows_per_sec"] = MICRO_ROWS / benchmark.stats.stats.mean


def test_query_throughput_compiled(benchmark):
    database = _make_database(True, MICRO_ROWS)
    result = benchmark(lambda: database.execute("SELECT sum(a), count(*) FROM m").rows)
    assert result[0][1] == MICRO_ROWS
    benchmark.extra_info["rows_per_sec"] = MICRO_ROWS / benchmark.stats.stats.mean


def test_query_throughput_groupby_low_cardinality(benchmark):
    database = _make_groupby_database(MICRO_ROWS)
    query = "SELECT grp_low, count(*), sum(a) FROM gb GROUP BY grp_low"
    result = benchmark(lambda: database.execute(query).rows)
    assert sum(row[1] for row in result) == MICRO_ROWS
    benchmark.extra_info["rows_per_sec"] = MICRO_ROWS / benchmark.stats.stats.mean


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON report (default: benchmarks/BENCH_engine.json, "
        "or BENCH_engine_smoke.json in --smoke mode so reduced-row numbers never "
        "reach the regression gate)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="also refresh benchmarks/BENCH_engine_baseline.json (machine-specific)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="also measure the real parallel tier with an N-process worker pool "
        "and report the measured (wall-clock) speedup vs the serial scan",
    )
    parser.add_argument(
        "--groupby",
        action="store_true",
        help="also measure the grouped-aggregation pattern (low- and "
        "high-cardinality GROUP BY; with --workers, the measured two-phase "
        "grouped-dispatch speedup)",
    )
    parser.add_argument(
        "--joins",
        action="store_true",
        help="also measure the join pattern: hash vs nested-loop rows/sec on "
        "a 10k-row 2-way equi-join and on the Viterbi-shaped 3-way join "
        "(excluded from the committed baseline, like the parallel metrics)",
    )
    parser.add_argument(
        "--indexes",
        action="store_true",
        help="also measure the access-path pattern: index-probe vs "
        "sequential-scan point lookups on a 100k-row indexed table plus a "
        "range-selectivity sweep (0.001%% to 50%% hit rate; excluded from "
        "the committed baseline, like the join metrics)",
    )
    parser.add_argument(
        "--columnar",
        action="store_true",
        help="also measure the columnar-storage pattern: bitmap-vectorized "
        "WHERE vs the row-tuple path on filtered aggregate scans, filtered "
        "projection, and DML (excluded from the committed baseline; the "
        "10%%-selectivity filtered aggregate asserts a >=3x speedup at "
        "full scale)",
    )
    parser.add_argument(
        "--compression",
        action="store_true",
        help="also measure the dictionary-compression pattern: code-space "
        "text predicates (=, IN, LIKE prefix; >=5x at full scale) and "
        "1%%-selectivity bitmap-aware UPDATE (>=3x) on a 100k-row "
        "low-cardinality text table vs the same statements with "
        "columnar_compression=False (excluded from the committed baseline)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: reduced row count, one timing repeat — checks the "
        "benchmark still runs, produces no meaningful absolute numbers",
    )
    args = parser.parse_args(argv)
    if args.smoke and args.write_baseline:
        parser.error("--smoke numbers are meaningless as a baseline; drop one flag")
    rows = min(MICRO_ROWS, 8_000) if args.smoke else MICRO_ROWS
    output = args.output
    if output is None:
        name = "BENCH_engine_smoke.json" if args.smoke else "BENCH_engine.json"
        output = Path(__file__).resolve().parent / name
    metrics = run_micro_suite(
        rows,
        workers=args.workers,
        repeats=1 if args.smoke else 3,
        groupby=args.groupby,
        joins=args.joins,
        indexes=args.indexes,
        columnar=args.columnar,
        compression=args.compression,
    )
    write_report(output, metrics, rows=rows)
    print(f"wrote {output}" + (" (smoke mode)" if args.smoke else ""))
    for name in sorted(metrics):
        if name.endswith("_measured_speedup"):
            print(f"  {name:44s} {metrics[name]:>14.2f}x (measured, not simulated)")
        elif name.endswith("_speedup"):
            print(f"  {name:44s} {metrics[name]:>14.2f}x")
        else:
            print(f"  {name:44s} {metrics[name]:>14,.0f} rows/sec")
    if args.write_baseline:
        baseline = Path(__file__).resolve().parent / "BENCH_engine_baseline.json"
        write_report(
            baseline,
            {k: v for k, v in metrics.items() if _baseline_metric(k)},
            rows=rows,
        )
        print(f"wrote {baseline}")
    return 0


def test_smoke_does_not_touch_default_report(tmp_path):
    """--smoke without --output must not overwrite BENCH_engine.json."""
    import json as _json

    out = Path(__file__).resolve().parent / "BENCH_engine_smoke.json"
    default = Path(__file__).resolve().parent / "BENCH_engine.json"
    before = default.read_text() if default.exists() else None
    assert main(["--smoke"]) == 0
    assert _json.loads(out.read_text())["rows"] <= 8_000
    if before is not None:
        assert default.read_text() == before
    out.unlink()


if __name__ == "__main__":
    raise SystemExit(main())
