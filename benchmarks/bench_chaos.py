"""Chaos sweep: seeded fault-injection runs over the serving stack.

Each seed (see ``repro.engine.chaos``) drives concurrent clients through a
mixed workload while the full fault arsenal fires — worker crashes, hangs,
pickle failures, truncated sends, client stalls, abrupt disconnects — and
checks the robustness invariants: no deadlock, graceful drain, no leaked
readers/writer lock, monotone table versions, no forbidden error codes,
and committed data byte-identical to a fault-free replay.

Entry points:

* ``python benchmarks/bench_chaos.py --seeds 25`` — the acceptance sweep,
  writes ``BENCH_chaos.json``.
* ``python benchmarks/bench_chaos.py --smoke`` — one fixed seed within a
  ~10 second budget; the CI configuration.

Exit status is nonzero if any seed fails, so both modes gate directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine.chaos import run_chaos

_SMOKE_SEED = 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=25, metavar="N",
                        help="run seeds 1..N (default 25)")
    parser.add_argument("--smoke", action="store_true",
                        help=f"CI mode: the single fixed seed {_SMOKE_SEED}")
    parser.add_argument("--statements", type=int, default=30, metavar="N",
                        help="statements per client per seed (default 30)")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write results JSON here (default BENCH_chaos.json; "
                             "smoke mode writes nothing)")
    args = parser.parse_args(argv)

    seeds = [_SMOKE_SEED] if args.smoke else list(range(1, args.seeds + 1))
    results: List[Dict] = []
    failed = 0
    for seed in seeds:
        report = run_chaos(seed, statements_per_client=args.statements)
        print(report.summary(), flush=True)
        if not report.ok:
            failed += 1
            for line in report.errors:
                print(f"  !! {line}", flush=True)
        results.append(
            {
                "seed": seed,
                "ok": report.ok,
                "statements": report.statements,
                "acked_writes": report.acked_writes,
                "in_doubt_writes": report.in_doubt_writes,
                "failed_writes": report.failed_writes,
                "faults_fired": report.faults_fired,
                "reconnects": report.reconnects,
                "busy_retries": report.busy_retries,
                "typed_errors": report.typed_errors,
                "server": report.server_stats,
                "worker_pool": report.pool_stats,
                "seconds": round(report.elapsed_seconds, 3),
                "errors": report.errors,
            }
        )

    print(f"chaos: {len(seeds) - failed}/{len(seeds)} seeds passed", flush=True)
    if not args.smoke:
        output = Path(args.output or Path(__file__).parent / "BENCH_chaos.json")
        output.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {output}", flush=True)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
