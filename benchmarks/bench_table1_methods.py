"""Table 1: the method catalogue.

One benchmark per Table 1 entry, running the method end-to-end on a small
synthetic workload.  The point is coverage (every method in the paper's
catalogue is implemented and runnable), with per-method runtimes as a bonus.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database
from repro.datasets import (
    load_baskets_table,
    load_logistic_table,
    load_points_table,
    load_regression_table,
    make_baskets,
    make_blobs,
    make_documents,
    make_logistic,
    make_low_rank_matrix,
    make_regression,
)
from repro.methods import (
    association_rules,
    decision_tree,
    kmeans,
    lda,
    linear_regression,
    logistic_regression,
    naive_bayes,
    profile,
    quantiles,
    svd,
    svm,
)
from repro.methods.decision_tree import FeatureSpec
from repro.methods.sketches import count_distinct, sketch_column
from repro.support import SparseVector, conjugate_gradient, install_array_ops


@pytest.fixture(scope="module")
def table1_db():
    database = Database(num_segments=4)
    regression = make_regression(1500, 5, seed=61)
    load_regression_table(database, "regr", regression)
    classification = make_logistic(1500, 4, seed=62)
    load_logistic_table(database, "logi", classification)
    signed = make_logistic(1000, 4, seed=63, labels_plus_minus=True)
    load_logistic_table(database, "signed", signed)
    points, _, _ = make_blobs(800, 3, 4, seed=64)
    load_points_table(database, "pts", points)
    baskets = make_baskets(300, 25, seed=65)
    load_baskets_table(database, "baskets", baskets)
    documents, _ = make_documents(25, 40, 3, document_length=25, seed=66)
    lda.load_corpus_table(database, "corpus", documents)
    return database


def test_linear_regression(benchmark, table1_db):
    model = benchmark(lambda: linear_regression.train(table1_db, "regr"))
    assert model.r2 > 0.9


def test_logistic_regression(benchmark, table1_db):
    model = benchmark.pedantic(
        lambda: logistic_regression.train(table1_db, "logi", max_iterations=10),
        rounds=1, iterations=1,
    )
    assert model.num_rows == 1500


def test_naive_bayes(benchmark, table1_db):
    model = benchmark(lambda: naive_bayes.train_gaussian(table1_db, "logi", "y", "x"))
    assert len(model.classes) == 2


def test_decision_tree(benchmark, table1_db):
    table1_db.execute("DROP TABLE IF EXISTS tree_data")
    table1_db.execute(
        "CREATE TABLE tree_data AS SELECT y, x[1] AS f1, x[2] AS f2 FROM logi"
    )
    model = benchmark.pedantic(
        lambda: decision_tree.train(
            table1_db, "tree_data", "y", [FeatureSpec("f1"), FeatureSpec("f2")],
            max_depth=3, max_numeric_candidates=8,
        ),
        rounds=1, iterations=1,
    )
    assert model.num_nodes() >= 1


def test_svm(benchmark, table1_db):
    model = benchmark.pedantic(
        lambda: svm.train_classifier(table1_db, "signed", max_iterations=10),
        rounds=1, iterations=1,
    )
    assert model.weights.shape == (4,)


def test_kmeans(benchmark, table1_db):
    result = benchmark.pedantic(
        lambda: kmeans.train(table1_db, "pts", k=4, seed=67, max_iterations=10),
        rounds=1, iterations=1,
    )
    assert result.centroids.shape == (4, 3)


def test_svd_factorization(benchmark):
    matrix = make_low_rank_matrix(60, 40, 5, seed=68)
    result = benchmark(lambda: svd.truncated_svd(matrix, rank=5, seed=69))
    assert result.relative_error(matrix) < 0.05


def test_lda(benchmark, table1_db):
    model = benchmark.pedantic(
        lambda: lda.train(table1_db, "corpus", num_topics=3, num_iterations=5, seed=70),
        rounds=1, iterations=1,
    )
    assert model.num_topics == 3


def test_association_rules(benchmark, table1_db):
    itemsets, rules = benchmark.pedantic(
        lambda: association_rules.mine(table1_db, "baskets", min_support=0.3, min_confidence=0.6),
        rounds=1, iterations=1,
    )
    assert itemsets


def test_count_min_sketch(benchmark, table1_db):
    sketch = benchmark(lambda: sketch_column(table1_db, "regr", "id", eps=0.02, delta=0.02))
    assert sketch.total == 1500


def test_flajolet_martin_sketch(benchmark, table1_db):
    estimate = benchmark(lambda: count_distinct(table1_db, "regr", "id"))
    assert 800 <= estimate <= 2800


def test_data_profiling(benchmark, table1_db):
    result = benchmark(lambda: profile.profile(table1_db, "regr"))
    assert result.row_count == 1500


def test_quantiles(benchmark, table1_db):
    values = benchmark(
        lambda: quantiles.approximate_quantiles(table1_db, "regr", "y", [0.25, 0.5, 0.75])
    )
    assert values[0] <= values[1] <= values[2]


def test_sparse_vectors(benchmark):
    dense = np.zeros(5000)
    dense[::100] = 1.0

    def run():
        vector = SparseVector.from_dense(dense)
        return vector.dot(vector)

    assert benchmark(run) == 50.0


def test_array_operations(benchmark, table1_db):
    install_array_ops(table1_db)
    value = benchmark(
        lambda: table1_db.query_scalar("SELECT sum(madlib_array_dot(x, x)) FROM regr")
    )
    assert value > 0


def test_conjugate_gradient(benchmark):
    rng = np.random.default_rng(71)
    basis = rng.normal(size=(30, 30))
    matrix = basis @ basis.T + 30 * np.eye(30)
    rhs = rng.normal(size=30)
    result = benchmark(lambda: conjugate_gradient(lambda v: matrix @ v, rhs, tolerance=1e-8))
    assert result.converged
