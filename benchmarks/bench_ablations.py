"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Merge-path parallelism (Section 3.1.1): segmented aggregation vs a single
   transition stream.
2. Symmetric / copy-free transition kernel (Section 4.4): the v0.3 vs
   v0.2.1beta lesson, isolated on one segment count.
3. Driver-function overhead (Section 3.1.2): how much of an iterative method's
   runtime is the Python driver vs the in-engine aggregate work.
4. k-means assignment strategy (Section 4.3.1): implicit recomputation vs an
   explicit centroid_id column refreshed with UPDATE.
5. UPDATE vs CREATE TABLE AS SELECT for bulk state replacement (the
   PostgreSQL versioned-storage discussion).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import Database
from repro.datasets import load_points_table, load_regression_table, make_blobs, make_regression
from repro.driver import IterationController
from repro.methods import kmeans, linear_regression, logistic_regression
from repro.datasets import load_logistic_table, make_logistic

from harness import DEFAULT_ROWS, best_linregr, build_regression_database, run_linregr


# ---------------------------------------------------------------------------
# 1. Merge-path parallelism
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("parallel", [True, False], ids=["segmented", "single_stream"])
def test_ablation_merge_path(benchmark, parallel):
    database = Database(num_segments=8, parallel_aggregation=parallel)
    data = make_regression(DEFAULT_ROWS, 20, seed=101)
    load_regression_table(database, "data", data)
    linear_regression.install_linear_regression(database)

    def run():
        result = database.execute("SELECT linregr(y, x) FROM data")
        return result.stats.simulated_parallel_seconds

    simulated = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["parallel_aggregation"] = parallel
    benchmark.extra_info["simulated_parallel_seconds"] = simulated


def test_merge_path_speedup_shape():
    # Enough rows that per-segment transition work dominates timer noise on
    # the compiled engine; compares the aggregate-pattern times (the merge
    # path is an aggregation-layer choice, per-query bookkeeping is shared).
    database = build_regression_database(max(DEFAULT_ROWS, 24_000), 20, segments=8)
    segmented = best_linregr(database, version="v0.3")
    database.parallel_aggregation = False
    single = best_linregr(database, version="v0.3")
    database.parallel_aggregation = True
    # Simulated elapsed aggregate time with 8 segments should be several times lower.
    assert segmented.aggregate_parallel_seconds < single.aggregate_parallel_seconds / 3


# ---------------------------------------------------------------------------
# 2. Transition-kernel ablation at fixed shape
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("version", ["v0.3", "v0.2.1beta", "v0.1alpha"])
def test_ablation_transition_kernel(benchmark, version):
    database = build_regression_database(DEFAULT_ROWS, 40, segments=6)
    measurement = benchmark.pedantic(
        lambda: run_linregr(database, version=version), rounds=1, iterations=1
    )
    benchmark.extra_info["version"] = version
    benchmark.extra_info["simulated_parallel_seconds"] = measurement.simulated_parallel_seconds


# ---------------------------------------------------------------------------
# 3. Driver-function overhead
# ---------------------------------------------------------------------------


def test_ablation_driver_overhead(benchmark):
    """Time a full IRLS run and report the share spent outside the aggregate."""
    database = Database(num_segments=4)
    data = make_logistic(DEFAULT_ROWS, 5, seed=102)
    load_logistic_table(database, "logi", data)

    def run():
        start = time.perf_counter()
        model = logistic_regression.train(database, "logi", max_iterations=5)
        total = time.perf_counter() - start
        return model, total

    model, total = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["iterations"] = model.num_iterations
    benchmark.extra_info["total_seconds"] = total
    assert model.num_iterations >= 1


def test_driver_iteration_overhead_is_small():
    """The per-iteration driver bookkeeping must be tiny relative to a data pass."""
    database = Database(num_segments=4)
    data = make_logistic(max(DEFAULT_ROWS, 2000), 5, seed=103)
    load_logistic_table(database, "logi", data)

    # Cost of one no-op driver iteration (kick-off + temp-table insert only).
    controller = IterationController(database, initial_state=0.0, max_iterations=3)
    with controller:
        start = time.perf_counter()
        controller.update("SELECT %(previous_state)s + 1")
        driver_only = time.perf_counter() - start

    # Cost of one real IRLS pass over the data.
    logistic_regression.install_logistic_regression(database)
    start = time.perf_counter()
    database.execute("SELECT logregr_irls_step(y, x, NULL) FROM logi")
    data_pass = time.perf_counter() - start
    assert driver_only < data_pass


# ---------------------------------------------------------------------------
# 4. k-means assignment strategies
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("strategy", ["implicit", "explicit"])
def test_ablation_kmeans_assignment(benchmark, strategy):
    database = Database(num_segments=4)
    points, _, _ = make_blobs(1500, 3, 4, seed=104)
    load_points_table(database, "pts", points)

    result = benchmark.pedantic(
        lambda: kmeans.train(
            database, "pts", k=4, seed=105, max_iterations=8, assignment_strategy=strategy
        ),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["iterations"] = result.num_iterations
    benchmark.extra_info["objective"] = result.objective


# ---------------------------------------------------------------------------
# 5. UPDATE vs CREATE TABLE AS SELECT
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("strategy", ["update", "ctas"])
def test_ablation_update_vs_ctas(benchmark, strategy):
    """Bulk state replacement: UPDATE in place vs rebuilding the table.

    The paper notes that on PostgreSQL's versioned storage a large UPDATE is
    often slower than CREATE TABLE AS SELECT + DROP; the engine here has no
    versioned storage, so this ablation documents the trade-off on this
    substrate rather than reproducing PostgreSQL's exact ordering.
    """
    database = Database(num_segments=4)
    database.create_table("state", [("id", "integer"), ("value", "double precision")])
    database.load_rows("state", [(i, float(i)) for i in range(max(DEFAULT_ROWS, 2000))])

    def run_update():
        database.execute("UPDATE state SET value = value + 1")

    def run_ctas():
        database.execute("DROP TABLE IF EXISTS state_next")
        database.execute("CREATE TABLE state_next AS SELECT id, value + 1 AS value FROM state")
        database.execute("DROP TABLE state")
        database.execute("ALTER TABLE state_next RENAME TO state")

    benchmark.pedantic(run_update if strategy == "update" else run_ctas, rounds=1, iterations=1)
    benchmark.extra_info["strategy"] = strategy
    assert database.query_scalar("SELECT count(*) FROM state") == max(DEFAULT_ROWS, 2000)
