"""Serving-layer benchmark: plan-cached EXECUTE vs uncached QUERY over TCP.

Measures end-to-end wire-protocol throughput for an indexed point lookup in
three modes against the same data:

* ``uncached``  — ``query`` ops against a server with the plan cache off:
  every statement is re-normalized, re-parsed and re-planned.
* ``cached``    — ``query`` ops with the plan cache on: the normalized
  fingerprint hits the shared cache, skipping parse + plan.
* ``prepared``  — ``prepare`` once, then ``execute`` by handle: the hot
  path skips normalization too.

Clients pipeline requests (write a batch, then read the batch) so the
numbers measure server-side statement cost rather than per-request RTT.
The acceptance gate: prepared EXECUTE throughput >= 3x uncached QUERY.

Entry points:

* ``python benchmarks/bench_serving.py`` — full run (1/2/4/8-client sweep),
  writes ``BENCH_serving.json``.
* ``python benchmarks/bench_serving.py --smoke`` — 2 clients, small counts;
  the CI configuration.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Database
from repro.engine.serving import ServerThread, ServingClient

ROWS = 10_000
BATCH = 64


def _make_database(plan_cache: int) -> Database:
    db = Database(num_segments=2, plan_cache=plan_cache)
    db.execute("CREATE TABLE bench (id INTEGER, grp TEXT, v DOUBLE PRECISION)")
    db.load_rows(
        "bench", [(i, "abcd"[i % 4], i * 0.25) for i in range(ROWS)]
    )
    db.execute("CREATE INDEX bench_id ON bench (id)")
    db.execute("ANALYZE bench")
    return db


def _client_worker(
    host: str, port: int, mode: str, statements: int, counter: List[int]
) -> None:
    sql = "SELECT id, grp, v FROM bench WHERE id = %(id)s"
    with ServingClient(host, port) as client:
        handle = client.prepare(sql) if mode == "prepared" else None
        done = 0
        while done < statements:
            batch = min(BATCH, statements - done)
            if mode == "prepared":
                requests = [
                    {"op": "execute", "handle": handle, "params": {"id": (done + i) % ROWS}}
                    for i in range(batch)
                ]
            else:
                requests = [
                    {"op": "query", "sql": sql, "params": {"id": (done + i) % ROWS}}
                    for i in range(batch)
                ]
            replies = client.pipeline(requests)
            for reply in replies:
                if not reply.get("ok"):
                    raise RuntimeError(f"statement failed: {reply}")
                if reply["rowcount"] != 1:
                    raise RuntimeError(f"wrong rowcount: {reply}")
            done += batch
        counter.append(done)


def _run_mode(mode: str, clients: int, statements_per_client: int) -> Dict[str, float]:
    plan_cache = 0 if mode == "uncached" else 256
    db = _make_database(plan_cache)
    with ServerThread(
        db, max_concurrent=max(clients, 2), max_queue=64, plan_cache=plan_cache
    ) as server:
        counter: List[int] = []
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(server.host, server.port, mode, statements_per_client, counter),
            )
            for _ in range(clients)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        total = sum(counter)
        if total != clients * statements_per_client:
            raise RuntimeError(f"lost statements: {total}")
        hit_ratio = None
        if db.plan_cache is not None:
            stats = db.plan_cache.stats()
            lookups = stats["hits"] + stats["misses"]
            hit_ratio = stats["hits"] / lookups if lookups else 0.0
    return {
        "mode": mode,
        "clients": clients,
        "statements": total,
        "seconds": round(elapsed, 4),
        "statements_per_second": round(total / elapsed, 1),
        "plan_cache_hit_ratio": None if hit_ratio is None else round(hit_ratio, 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: 2 clients, small statement counts")
    parser.add_argument("--statements", type=int, default=None, metavar="N",
                        help="statements per client (default 2000; smoke 300)")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write results JSON here (default BENCH_serving.json)")
    args = parser.parse_args(argv)

    per_client = args.statements or (300 if args.smoke else 2000)
    client_counts = [2] if args.smoke else [1, 2, 4, 8]

    results: List[Dict[str, float]] = []
    for clients in client_counts:
        for mode in ("uncached", "cached", "prepared"):
            row = _run_mode(mode, clients, per_client)
            results.append(row)
            ratio = ("" if row["plan_cache_hit_ratio"] is None
                     else f"  hit_ratio={row['plan_cache_hit_ratio']:.3f}")
            print(f"{mode:9s} clients={clients}  "
                  f"{row['statements_per_second']:>10.1f} stmt/s{ratio}", flush=True)

    # The acceptance gate, per client count: prepared EXECUTE >= 3x uncached QUERY.
    ok = True
    for clients in client_counts:
        by_mode = {r["mode"]: r for r in results if r["clients"] == clients}
        speedup = (by_mode["prepared"]["statements_per_second"]
                   / by_mode["uncached"]["statements_per_second"])
        cached_speedup = (by_mode["cached"]["statements_per_second"]
                          / by_mode["uncached"]["statements_per_second"])
        print(f"clients={clients}: prepared/uncached = {speedup:.2f}x, "
              f"cached/uncached = {cached_speedup:.2f}x", flush=True)
        if speedup < 3.0:
            ok = False
            print(f"FAIL: prepared speedup {speedup:.2f}x < 3.0x", flush=True)

    output = Path(args.output) if args.output else Path(__file__).parent / "BENCH_serving.json"
    output.write_text(json.dumps({"rows": ROWS, "results": results}, indent=2) + "\n")
    print(f"wrote {output}", flush=True)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
