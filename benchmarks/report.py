"""Regenerate the paper's tables and figures from the reproduction.

Usage::

    python benchmarks/report.py figure4   # Figure 4 execution-time table
    python benchmarks/report.py figure5   # Figure 5 series (time vs #variables per segment count)
    python benchmarks/report.py table1    # Table 1 method catalogue check
    python benchmarks/report.py table2    # Table 2 SGD-trained models
    python benchmarks/report.py table3    # Table 3 text-analysis methods
    python benchmarks/report.py all

Row counts are laptop-scale (see ``REPRO_BENCH_ROWS``); the "paper" column in
figure4/figure5 output is the paper's number linearly rescaled from 10M rows
to the row count actually used, so only the *shape* (ordering, growth,
speedup) is comparable, not absolute values.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from harness import (  # noqa: E402
    DEFAULT_ROWS,
    PAPER_SEGMENTS,
    PAPER_VERSIONS,
    format_table,
    scale_paper_time,
    sweep_figure4,
)

from repro import Database  # noqa: E402
from repro.convex import (  # noqa: E402
    train_crf_labeling,
    train_lasso,
    train_least_squares,
    train_logistic,
    train_recommendation,
    train_svm,
)
from repro.datasets import (  # noqa: E402
    load_baskets_table,
    load_logistic_table,
    load_points_table,
    load_regression_table,
    make_baskets,
    make_blobs,
    make_logistic,
    make_low_rank_matrix,
    make_name_variants,
    make_ratings,
    make_regression,
    make_tag_corpus,
    make_documents,
)
from repro.methods import (  # noqa: E402
    association_rules,
    kmeans,
    lda,
    linear_regression,
    logistic_regression,
    naive_bayes,
    profile,
    quantiles,
    svd,
    svm,
)
from repro.methods.sketches import count_distinct, sketch_column  # noqa: E402
from repro.support import SparseVector, conjugate_gradient, install_array_ops  # noqa: E402
from repro.text import (  # noqa: E402
    TokenFeatureExtractor,
    TrigramIndex,
    gibbs_sample,
    train_crf,
    viterbi,
)

#: Reduced default sweep so `report.py figure4` finishes in a few minutes.
REPORT_VARIABLES = [10, 20, 40, 80]


def report_figure4(variables=REPORT_VARIABLES, segments=PAPER_SEGMENTS, rows=DEFAULT_ROWS) -> str:
    measurements = sweep_figure4(
        rows=rows, segments_list=segments, variables_list=variables, versions=PAPER_VERSIONS
    )
    table_rows = []
    for measurement in measurements:
        paper = scale_paper_time(
            measurement.segments, measurement.variables, measurement.version, rows=measurement.rows
        )
        table_rows.append(
            {
                "# segments": measurement.segments,
                "# variables": measurement.variables,
                "version": measurement.version,
                "rows": measurement.rows,
                "measured (s)": measurement.simulated_parallel_seconds,
                "paper rescaled (s)": paper if paper is not None else "n/a",
            }
        )
    lines = [
        "Figure 4: Linear regression execution times "
        f"({rows} rows; paper column rescaled from 10M rows)",
        format_table(
            table_rows,
            ["# segments", "# variables", "version", "rows", "measured (s)", "paper rescaled (s)"],
        ),
    ]
    return "\n".join(lines)


def report_figure5(variables=REPORT_VARIABLES, segments=PAPER_SEGMENTS, rows=DEFAULT_ROWS) -> str:
    measurements = sweep_figure4(
        rows=rows, segments_list=segments, variables_list=variables, versions=["v0.3"]
    )
    by_cell = {(m.segments, m.variables): m for m in measurements}
    table_rows = []
    for variables_count in variables:
        row = {"# independent variables": variables_count}
        for segment_count in segments:
            measurement = by_cell[(segment_count, variables_count)]
            row[f"{segment_count} segments (s)"] = measurement.simulated_parallel_seconds
        table_rows.append(row)
    speedup_rows = []
    for segment_count in segments:
        widest = by_cell[(segment_count, variables[-1])]
        speedup_rows.append(
            {"# segments": segment_count, "speedup vs single stream": widest.speedup}
        )
    lines = [
        f"Figure 5: Linear regression (v0.3) execution times, {rows} rows",
        format_table(
            table_rows,
            ["# independent variables"] + [f"{s} segments (s)" for s in segments],
        ),
        "",
        "Parallel speedup at the widest model (ideal = # segments):",
        format_table(speedup_rows, ["# segments", "speedup vs single stream"]),
    ]
    return "\n".join(lines)


def report_table1() -> str:
    database = Database(num_segments=4)
    regression = make_regression(2000, 5, seed=201)
    load_regression_table(database, "regr", regression)
    classification = make_logistic(2000, 4, seed=202)
    load_logistic_table(database, "logi", classification)
    signed = make_logistic(1000, 4, seed=203, labels_plus_minus=True)
    load_logistic_table(database, "signed", signed)
    points, _, _ = make_blobs(1000, 3, 4, seed=204)
    load_points_table(database, "pts", points)
    baskets = make_baskets(300, 25, seed=205)
    load_baskets_table(database, "baskets", baskets)
    documents, _ = make_documents(25, 40, 3, seed=206)
    lda.load_corpus_table(database, "corpus", documents)
    install_array_ops(database)

    rows = []

    def timed(category, method, runner, summary):
        start = time.perf_counter()
        value = runner()
        elapsed = time.perf_counter() - start
        rows.append(
            {"category": category, "method": method, "status": "ok",
             "seconds": elapsed, "summary": summary(value)}
        )

    timed("Supervised Learning", "Linear Regression",
          lambda: linear_regression.train(database, "regr"),
          lambda m: f"r2={m.r2:.3f}")
    timed("Supervised Learning", "Logistic Regression",
          lambda: logistic_regression.train(database, "logi", max_iterations=10),
          lambda m: f"iters={m.num_iterations}")
    timed("Supervised Learning", "Naive Bayes Classification",
          lambda: naive_bayes.train_gaussian(database, "logi", "y", "x"),
          lambda m: f"classes={len(m.classes)}")
    timed("Supervised Learning", "Decision Trees (C4.5)",
          lambda: _tree(database),
          lambda m: f"nodes={m.num_nodes()}")
    timed("Supervised Learning", "Support Vector Machines",
          lambda: svm.train_classifier(database, "signed", max_iterations=10),
          lambda m: f"epochs={m.num_iterations}")
    timed("Unsupervised Learning", "k-Means Clustering",
          lambda: kmeans.train(database, "pts", k=4, seed=207, max_iterations=10),
          lambda m: f"objective={m.objective:.1f}")
    timed("Unsupervised Learning", "SVD Matrix Factorisation",
          lambda: svd.truncated_svd(make_low_rank_matrix(60, 40, 5, seed=208), rank=5, seed=209),
          lambda m: f"rel_err={m.relative_error(make_low_rank_matrix(60, 40, 5, seed=208)):.3f}")
    timed("Unsupervised Learning", "Latent Dirichlet Allocation",
          lambda: lda.train(database, "corpus", num_topics=3, num_iterations=5, seed=210),
          lambda m: f"topics={m.num_topics}")
    timed("Unsupervised Learning", "Association Rules",
          lambda: association_rules.mine(database, "baskets", min_support=0.3, min_confidence=0.6),
          lambda result: f"itemsets={len(result[0])}, rules={len(result[1])}")
    timed("Descriptive Statistics", "Count-Min Sketch",
          lambda: sketch_column(database, "regr", "id", eps=0.02, delta=0.02),
          lambda sketch: f"total={sketch.total}")
    timed("Descriptive Statistics", "Flajolet-Martin Sketch",
          lambda: count_distinct(database, "regr", "id"),
          lambda estimate: f"distinct~{estimate:.0f} (true 2000)")
    timed("Descriptive Statistics", "Data Profiling",
          lambda: profile.profile(database, "regr"),
          lambda p: f"columns={len(p.columns)}")
    timed("Descriptive Statistics", "Quantiles",
          lambda: quantiles.approximate_quantiles(database, "regr", "y", [0.25, 0.5, 0.75]),
          lambda values: f"median={values[1]:.2f}")
    timed("Support Modules", "Sparse Vectors",
          lambda: SparseVector.from_dense(np.zeros(10000)).concat(SparseVector.repeat(1.0, 10)),
          lambda v: f"runs={v.num_runs}")
    timed("Support Modules", "Array Operations",
          lambda: database.query_scalar("SELECT sum(madlib_array_dot(x, x)) FROM regr"),
          lambda value: f"sum_xx={value:.1f}")
    timed("Support Modules", "Conjugate Gradient Optimization",
          lambda: _cg(),
          lambda result: f"iters={result.iterations}")

    return "Table 1: MADlib methods reproduced\n" + format_table(
        rows, ["category", "method", "status", "seconds", "summary"]
    )


def _tree(database):
    from repro.methods import decision_tree
    from repro.methods.decision_tree import FeatureSpec

    database.execute("DROP TABLE IF EXISTS tree_data")
    database.execute("CREATE TABLE tree_data AS SELECT y, x[1] AS f1, x[2] AS f2 FROM logi")
    return decision_tree.train(
        database, "tree_data", "y", [FeatureSpec("f1"), FeatureSpec("f2")],
        max_depth=3, max_numeric_candidates=8,
    )


def _cg():
    rng = np.random.default_rng(211)
    basis = rng.normal(size=(40, 40))
    matrix = basis @ basis.T + 40 * np.eye(40)
    return conjugate_gradient(lambda v: matrix @ v, rng.normal(size=40), tolerance=1e-8)


def report_table2() -> str:
    database = Database(num_segments=4)
    regression = make_regression(1500, 5, seed=221)
    load_regression_table(database, "regr", regression)
    classification = make_logistic(1500, 5, seed=222, labels_plus_minus=True)
    load_logistic_table(database, "classif", classification)
    ratings = make_ratings(40, 30, 4, density=0.3, seed=223)
    database.create_table(
        "ratings",
        [("user_id", "integer"), ("item_id", "integer"), ("rating", "double precision")],
    )
    database.load_rows("ratings", ratings)
    corpus = make_tag_corpus(30, seed=224)

    runs = [
        ("Least Squares", lambda: train_least_squares(database, "regr", max_epochs=10)),
        ("Lasso", lambda: train_lasso(database, "regr", mu=0.1, max_epochs=10)),
        ("Logistic Regression", lambda: train_logistic(database, "classif", max_epochs=10)),
        ("Classification (SVM)", lambda: train_svm(database, "classif", max_epochs=10)),
        ("Recommendation", lambda: train_recommendation(
            database, "ratings", rank=4, max_epochs=20, tolerance=1e-7).result),
        ("Labeling (CRF)", lambda: train_crf_labeling(database, corpus, max_epochs=3)),
    ]
    rows = []
    for name, runner in runs:
        start = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "application": name,
                "epochs": result.num_epochs,
                "initial loss": result.initial_loss,
                "final loss": result.final_loss,
                "loss decrease": f"{result.loss_decrease():.1%}",
                "seconds": elapsed,
            }
        )
    return (
        "Table 2: models implemented through the single SGD/IGD abstraction\n"
        + format_table(rows, ["application", "epochs", "initial loss", "final loss",
                              "loss decrease", "seconds"])
    )


def report_table3() -> str:
    corpus = make_tag_corpus(120, seed=231)
    train_corpus, test_corpus = corpus.split(0.8)
    model = train_crf(train_corpus, num_epochs=4, seed=232)
    extractor = TokenFeatureExtractor(dictionaries={"names": {"tebow", "denver", "smith"}})

    rows = []

    start = time.perf_counter()
    total_features = sum(
        len(features)
        for sequence in train_corpus.sequences
        for features in extractor.sequence_features(sequence.tokens)
    )
    rows.append({"method": "Text Feature Extraction", "tasks": "POS, NER, ER",
                 "result": f"{total_features} features over {train_corpus.token_count()} tokens",
                 "seconds": time.perf_counter() - start})

    start = time.perf_counter()
    correct = total = 0
    for sequence in test_corpus.sequences:
        predicted, _ = viterbi(model, sequence.tokens)
        correct += sum(p == g for p, g in zip(predicted, sequence.labels))
        total += len(sequence)
    rows.append({"method": "Viterbi Inference", "tasks": "POS, NER",
                 "result": f"token accuracy {correct / total:.1%}",
                 "seconds": time.perf_counter() - start})

    start = time.perf_counter()
    sentence = test_corpus.sequences[0]
    mcmc = gibbs_sample(model, sentence.tokens, num_samples=150, burn_in=50, seed=233)
    confidence = float(np.mean([mcmc.confidence(i) for i in range(len(sentence.tokens))]))
    rows.append({"method": "MCMC Inference", "tasks": "NER, ER",
                 "result": f"mean MAP confidence {confidence:.2f}",
                 "seconds": time.perf_counter() - start})

    start = time.perf_counter()
    database = Database(num_segments=2)
    pairs = make_name_variants(variants_per_name=8, seed=234)
    database.create_table("mentions", [("doc_id", "integer"), ("text", "text")])
    database.load_rows("mentions", [(i, mention) for i, (_, mention) in enumerate(pairs)])
    index = TrigramIndex(database, "mentions")
    index.build()
    matches = index.search("Tim Tebow", threshold=0.4)
    rows.append({"method": "Approximate String Matching", "tasks": "ER",
                 "result": f"{len(matches)} mentions matched for 'Tim Tebow'",
                 "seconds": time.perf_counter() - start})

    return "Table 3: statistical text analysis methods\n" + format_table(
        rows, ["method", "tasks", "result", "seconds"]
    )


REPORTS = {
    "figure4": report_figure4,
    "figure5": report_figure5,
    "table1": report_table1,
    "table2": report_table2,
    "table3": report_table3,
}


def main(argv):
    targets = argv[1:] or ["all"]
    if targets == ["all"]:
        targets = list(REPORTS)
    for target in targets:
        if target not in REPORTS:
            print(f"unknown report {target!r}; choose from {', '.join(REPORTS)} or 'all'")
            return 1
        print(REPORTS[target]())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
