"""Materialized-view maintenance benchmark: O(delta) upkeep vs the baselines.

Loads a base table (default 100k rows, ~100 groups), defines an incremental
grouped-aggregate view, then measures the cost of absorbing a 1% insert batch
three ways:

* **incremental** — INSERT with the view installed; maintenance folds only
  the delta rows into the stored aggregate states.
* **recompute**   — INSERT with no view watching, then a full REFRESH
  (rescan of the whole base table), the strategy a non-incremental view
  is forced into.
* **on-demand**   — INSERT, then re-run the defining query from scratch,
  the no-view-at-all baseline.

The acceptance gate is ``incremental`` at least 10x faster than
``recompute`` at the 1% delta.  A second scenario repeats the measurement
with a ``linregr`` model view (the paper's running example): each insert
batch leaves a continuously fresh model without retraining.

Entry points:

* ``python benchmarks/bench_matview.py`` — full run, writes
  ``BENCH_matview.json``.
* ``python benchmarks/bench_matview.py --smoke`` — scaled down (~seconds);
  the CI configuration.  Exit status is nonzero if the speedup gate fails.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Database
from repro.methods.linear_regression import install_linear_regression

REQUIRED_SPEEDUP = 10.0

AGG_VIEW_SQL = (
    "SELECT k, count(*) AS n, sum(v) AS total, avg(v) AS mean, "
    "min(v) AS lo, max(v) AS hi FROM base GROUP BY k"
)
LINREGR_VIEW_SQL = "SELECT linregr(y, x) AS model FROM points"


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _delta_rows(rows: int, groups: int, offset: int) -> List[tuple]:
    return [((offset + i) % groups, (offset + i) * 3 % 997) for i in range(rows)]


def _bench_aggregate(rows: int, groups: int, repeats: int) -> Dict:
    """Time one 1% insert delta under each maintenance discipline."""
    delta = max(1, rows // 100)

    def make_db(with_view: bool) -> Database:
        db = Database(num_segments=2)
        db.execute("CREATE TABLE base (k INTEGER, v INTEGER)")
        db.load_rows("base", _delta_rows(rows, groups, 0))
        if with_view:
            db.execute(f"CREATE MATERIALIZED VIEW agg AS {AGG_VIEW_SQL}")
            db.execute("SELECT * FROM agg")  # settle the initial build
        return db

    incremental: List[float] = []
    recompute: List[float] = []
    on_demand: List[float] = []
    for rep in range(repeats):
        batch = _delta_rows(delta, groups, rows + rep * delta)
        values = ", ".join(f"({k}, {v})" for k, v in batch)
        insert = f"INSERT INTO base VALUES {values}"

        db = make_db(with_view=True)
        incremental.append(_timed(lambda: db.execute(insert)))
        folded = db.execute("SELECT * FROM agg").rows

        db = make_db(with_view=True)
        db.execute(insert)
        # Force the full-rescan path on the same end state for a fair check.
        recompute.append(_timed(lambda: db.execute("REFRESH MATERIALIZED VIEW agg")))
        refreshed = db.execute("SELECT * FROM agg").rows

        db = make_db(with_view=False)
        db.execute(insert)
        on_demand.append(_timed(lambda: db.execute(AGG_VIEW_SQL)))

        if repr(folded) != repr(refreshed):
            raise AssertionError("incremental fold diverged from full refresh")

    best = {
        "incremental_s": min(incremental),
        "recompute_s": min(recompute),
        "on_demand_s": min(on_demand),
    }
    best["speedup_vs_recompute"] = best["recompute_s"] / best["incremental_s"]
    best["speedup_vs_on_demand"] = best["on_demand_s"] / best["incremental_s"]
    return {
        "scenario": "grouped-aggregates",
        "rows": rows,
        "groups": groups,
        "delta_rows": delta,
        **{k: round(v, 6) for k, v in best.items()},
    }


def _bench_linregr(rows: int, batches: int) -> Dict:
    """A continuously fresh linear-regression model view under streaming inserts."""
    delta = max(1, rows // 100)
    db = Database(num_segments=2)
    install_linear_regression(db)
    db.execute("CREATE TABLE points (y DOUBLE PRECISION, x DOUBLE PRECISION[])")
    db.load_rows(
        "points",
        [
            (2.0 * (i % 50) + 3.0 * (i % 7) + 1.0, [1.0, float(i % 50), float(i % 7)])
            for i in range(rows)
        ],
    )
    db.execute(f"CREATE MATERIALIZED VIEW model AS {LINREGR_VIEW_SQL}")
    db.execute("SELECT * FROM model")

    upkeep: List[float] = []
    for batch in range(batches):
        values = ", ".join(
            f"({2.0 * ((rows + i) % 50) + 3.0 * ((rows + i) % 7) + 1.0}, "
            f"ARRAY[1.0, {float((rows + i) % 50)}, {float((rows + i) % 7)}])"
            for i in range(delta)
        )
        insert = f"INSERT INTO points VALUES {values}"
        upkeep.append(_timed(lambda: db.execute(insert)))
        fresh = db.execute("SELECT * FROM model").rows
        direct = db.execute(LINREGR_VIEW_SQL).rows
        if repr(fresh) != repr(direct):
            raise AssertionError("model view diverged from direct query")

    retrain = _timed(lambda: db.execute("REFRESH MATERIALIZED VIEW model"))
    view = db.catalog.get_matview("model")
    return {
        "scenario": "linregr-model",
        "rows": rows,
        "delta_rows": delta,
        "batches": batches,
        "upkeep_per_batch_s": round(min(upkeep), 6),
        "full_retrain_s": round(retrain, 6),
        "speedup_vs_retrain": round(retrain / min(upkeep), 3),
        "deltas_applied": view.deltas_applied,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=100_000, metavar="N",
                        help="base-table rows (default 100000)")
    parser.add_argument("--groups", type=int, default=100, metavar="N",
                        help="distinct group keys (default 100)")
    parser.add_argument("--repeats", type=int, default=3, metavar="N",
                        help="measurement repeats, best-of (default 3)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: 20k rows, 1 repeat, no output file")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write results JSON here (default BENCH_matview.json; "
                             "smoke mode writes nothing)")
    args = parser.parse_args(argv)

    rows = 20_000 if args.smoke else args.rows
    repeats = 1 if args.smoke else args.repeats

    agg = _bench_aggregate(rows, args.groups, repeats)
    linregr = _bench_linregr(max(2_000, rows // 10), batches=2 if args.smoke else 5)
    results = [agg, linregr]

    for entry in results:
        print(json.dumps(entry), flush=True)

    speedup = agg["speedup_vs_recompute"]
    ok = speedup >= REQUIRED_SPEEDUP
    print(
        f"matview: incremental {speedup:.1f}x faster than recompute at "
        f"{agg['delta_rows']}/{rows} delta "
        f"({'PASS' if ok else f'FAIL, need {REQUIRED_SPEEDUP:.0f}x'})",
        flush=True,
    )

    if not args.smoke:
        output = Path(args.output or Path(__file__).parent / "BENCH_matview.json")
        output.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {output}", flush=True)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
