"""Figure 5: linear-regression (v0.3) execution time vs number of variables,
one series per segment count, plus the parallel-speedup claim.

The paper's observation: "the Greenplum database achieves perfect linear
speedup in the example shown" — doubling the number of segments roughly halves
the execution time, and the curves grow super-linearly in the number of
independent variables.

Two speedup series exist here (see ``docs/architecture.md``):

* the **simulated** series (segments swept, folds sequential, speedup
  projected from per-segment times) — the historical Figure 5 shape, and
* the **measured** series (``test_measured_parallel_workers``): the same
  aggregate executed on a real ``Database(parallel=N)`` worker pool, with
  wall-clock measured speedup reported per worker count.  No shape assertion
  is made on this series — it is hardware-dependent (a single-core CI box
  measures a slowdown, which is the truth) — the numbers land in
  ``extra_info`` for the report.
"""

from __future__ import annotations

import os

import pytest

from harness import DEFAULT_ROWS, best_linregr, build_regression_database, run_linregr


SEGMENT_SERIES = [6, 12, 24]
VARIABLE_AXIS = [10, 40, 80]
#: Worker counts for the measured-speedup series, capped at the host's cores
#: (shipping to more workers than cores only measures oversubscription).
_CORES = os.cpu_count() or 1
WORKER_SERIES = sorted({1, min(2, _CORES), min(4, _CORES)})
#: The speedup-shape assertions need per-segment transition work well above
#: timer noise; with the compiled/vectorized engine that takes more rows than
#: the sweep default (the interpreted seed engine was ~15x slower per row).
SHAPE_ROWS = max(DEFAULT_ROWS, 60_000)


@pytest.fixture(scope="module")
def figure5_database():
    return build_regression_database(SHAPE_ROWS, max(VARIABLE_AXIS), segments=SEGMENT_SERIES[0])


@pytest.mark.parametrize("segments", SEGMENT_SERIES)
@pytest.mark.parametrize("variables", VARIABLE_AXIS)
def test_scaling_series(benchmark, segments, variables):
    database = build_regression_database(DEFAULT_ROWS, variables, segments=segments)

    def run():
        return run_linregr(database, version="v0.3", segments=segments)

    measurement = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["segments"] = segments
    benchmark.extra_info["variables"] = variables
    benchmark.extra_info["simulated_parallel_seconds"] = measurement.simulated_parallel_seconds
    benchmark.extra_info["speedup_vs_serial"] = measurement.speedup


@pytest.mark.parametrize("workers", WORKER_SERIES)
def test_measured_parallel_workers(benchmark, workers):
    """Real speedup curve: measured wall clock vs worker-pool size.

    Unlike every other target in this file, nothing here is simulated: the
    per-segment folds run concurrently in worker processes and the reported
    speedup divides the serial fold time by measured elapsed time (dispatch
    and IPC included).
    """
    database = build_regression_database(
        DEFAULT_ROWS, 40, segments=max(6, workers), workers=workers
    )
    database.ensure_parallel_workers()  # spawn cost stays out of the timing

    def run():
        return run_linregr(database, version="v0.3")

    measurement = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert measurement.workers == workers  # the pool really executed it
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["measured_parallel_seconds"] = measurement.measured_parallel_seconds
    benchmark.extra_info["measured_speedup"] = measurement.measured_speedup
    benchmark.extra_info["aggregate_serial_seconds"] = measurement.aggregate_serial_seconds
    database.close()


def test_more_segments_reduce_simulated_time(figure5_database):
    """The Figure 5 speedup shape: 24 segments beat 6 segments on the same data.

    Measured on the aggregate-pattern times (transition/merge/final from
    AggregateTimings): that is the quantity the paper parallelises, and the
    compiled engine's constant per-query bookkeeping would otherwise drown
    the ratio at laptop row counts.
    """
    slow = best_linregr(figure5_database, version="v0.3", segments=6, repeats=5)
    fast = best_linregr(figure5_database, version="v0.3", segments=24, repeats=5)
    assert fast.aggregate_parallel_seconds < slow.aggregate_parallel_seconds
    # Speedup out of the ideal 4x.  The batched kernels lose some per-row
    # efficiency at smaller per-segment batches (a real effect the
    # interpreted seed engine did not have), so the bar is 1.6x, not 2x.
    assert slow.aggregate_parallel_seconds / fast.aggregate_parallel_seconds > 1.6


def test_speedup_is_close_to_segment_count(figure5_database):
    measurement = best_linregr(figure5_database, version="v0.3", segments=12)
    assert measurement.speedup > 6.0  # ideal is 12


def test_single_query_overhead_is_small(figure5_database):
    """Paper: 'The overhead for a single query is very low and only a fraction of a second.'"""
    measurement = run_linregr(figure5_database, version="v0.3", segments=6)
    overhead = measurement.wall_seconds - sum(
        t for t in [measurement.simulated_parallel_seconds] if t is not None
    )
    assert abs(overhead) < 5.0  # engine bookkeeping stays bounded at this scale
