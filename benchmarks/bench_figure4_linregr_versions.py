"""Figure 4: linear-regression execution times across versions, variables and segments.

Each benchmark runs ``SELECT linregr(y, x) FROM data`` with one of the three
implementation-generation kernels (v0.1alpha -> naive, v0.2.1beta ->
unoptimized, v0.3 -> optimized) for a given number of independent variables
and segments, at a laptop-scale row count.  pytest-benchmark records the wall
time; the simulated parallel time and the rescaled paper reference are stored
in ``extra_info`` so the JSON output can be compared against the paper's
table directly.

Run ``python benchmarks/report.py figure4`` for the full paper-style sweep.
"""

from __future__ import annotations

import pytest

from harness import (
    BENCH_SEGMENTS,
    BENCH_VARIABLES,
    DEFAULT_ROWS,
    PAPER_VERSIONS,
    run_linregr,
    scale_paper_time,
)


@pytest.mark.parametrize("segments", BENCH_SEGMENTS)
@pytest.mark.parametrize("variables", BENCH_VARIABLES)
@pytest.mark.parametrize("version", PAPER_VERSIONS)
def test_linregr_version_times(benchmark, regression_database_factory, segments, variables, version):
    database = regression_database_factory(DEFAULT_ROWS, variables, segments)

    def run():
        return run_linregr(database, version=version, segments=segments)

    measurement = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["segments"] = segments
    benchmark.extra_info["variables"] = variables
    benchmark.extra_info["version"] = version
    benchmark.extra_info["rows"] = measurement.rows
    benchmark.extra_info["simulated_parallel_seconds"] = measurement.simulated_parallel_seconds
    benchmark.extra_info["paper_seconds_rescaled"] = scale_paper_time(
        segments, variables, version, rows=measurement.rows
    )
    assert measurement.variables == variables


@pytest.mark.parametrize("variables", [10, 80])
def test_v03_beats_v021beta(regression_database_factory, variables):
    """The headline Figure 4 ordering: the v0.3 kernel is faster than v0.2.1beta."""
    database = regression_database_factory(DEFAULT_ROWS, variables, 6)
    optimized = run_linregr(database, version="v0.3")
    unoptimized = run_linregr(database, version="v0.2.1beta")
    assert optimized.simulated_parallel_seconds < unoptimized.simulated_parallel_seconds


def test_naive_kernel_loses_at_wide_models(regression_database_factory):
    """At large variable counts the v0.1alpha-style kernel falls behind v0.3."""
    database = regression_database_factory(DEFAULT_ROWS, 80, 6)
    optimized = run_linregr(database, version="v0.3")
    naive = run_linregr(database, version="v0.1alpha")
    assert optimized.simulated_parallel_seconds < naive.simulated_parallel_seconds


def test_execution_time_grows_with_variables(regression_database_factory):
    """Per-row cost grows (at least) quadratically in the number of variables."""
    narrow_db = regression_database_factory(DEFAULT_ROWS, 10, 6)
    wide_db = regression_database_factory(DEFAULT_ROWS, 80, 6)
    narrow = run_linregr(narrow_db, version="v0.3")
    wide = run_linregr(wide_db, version="v0.3")
    assert wide.simulated_parallel_seconds > narrow.simulated_parallel_seconds
