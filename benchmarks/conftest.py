"""Benchmark fixtures shared by the figure/table targets."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from harness import DEFAULT_ROWS, build_regression_database  # noqa: E402


@pytest.fixture(scope="session")
def bench_rows() -> int:
    return DEFAULT_ROWS


@pytest.fixture(scope="module")
def regression_database_factory():
    """Factory (with caching) for the linregr workload databases."""
    cache = {}

    def factory(num_rows: int, num_variables: int, segments: int):
        key = (num_rows, num_variables)
        if key not in cache:
            cache[key] = build_regression_database(num_rows, num_variables, segments=segments)
        database = cache[key]
        database.set_num_segments(segments)
        return database

    return factory
