"""Shared benchmark harness.

Builds the synthetic workloads, runs the linear-regression aggregate the way
Section 4.4 does (sweeping the number of independent variables, the number of
segments and the implementation version), and formats paper-style rows.

Scale note: the paper uses 10 million rows on a 24-core Greenplum cluster; the
default here is ``DEFAULT_ROWS`` rows on the in-process engine so the full
sweep finishes on a laptop.  Absolute numbers are therefore not comparable —
the quantities being reproduced are the *relative* ones: version ordering,
growth with the number of variables, and speedup with the number of segments.
Set the environment variable ``REPRO_BENCH_ROWS`` to raise the row count.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import Database
from repro.datasets import make_regression, load_regression_table
from repro.methods import linear_regression

#: Figure 4 sweep values in the paper.
PAPER_SEGMENTS = [6, 12, 18, 24]
PAPER_VARIABLES = [10, 20, 40, 80, 160, 320]
PAPER_VERSIONS = ["v0.3", "v0.2.1beta", "v0.1alpha"]
PAPER_ROWS = 10_000_000

#: Paper-reported execution times (seconds) from Figure 4, keyed by
#: (segments, variables, version).  Used by the report script to print the
#: paper column next to the measured column.
PAPER_FIGURE4: Dict[tuple, float] = {}
_FIGURE4_TABLE = """
6 10 4.447 9.501 1.337
6 20 4.688 11.60 1.874
6 40 6.843 17.96 3.828
6 80 13.28 52.94 12.98
6 160 35.66 181.4 51.20
6 320 186.2 683.8 333.4
12 10 2.115 4.756 0.9600
12 20 2.432 5.760 1.212
12 40 3.420 9.010 2.046
12 80 6.797 26.48 6.469
12 160 17.71 90.95 25.67
12 320 92.41 341.5 166.6
18 10 1.418 3.206 0.6197
18 20 1.648 3.805 1.003
18 40 2.335 5.994 1.183
18 80 4.461 17.73 4.314
18 160 11.90 60.58 17.14
18 320 61.66 227.7 111.4
24 10 1.197 2.383 0.3904
24 20 1.276 2.869 0.4769
24 40 1.698 4.475 1.151
24 80 3.363 13.35 3.263
24 160 8.840 45.48 13.10
24 320 46.18 171.7 84.59
"""
for _line in _FIGURE4_TABLE.strip().splitlines():
    _segments, _variables, _v03, _v021, _v01 = _line.split()
    PAPER_FIGURE4[(int(_segments), int(_variables), "v0.3")] = float(_v03)
    PAPER_FIGURE4[(int(_segments), int(_variables), "v0.2.1beta")] = float(_v021)
    PAPER_FIGURE4[(int(_segments), int(_variables), "v0.1alpha")] = float(_v01)


DEFAULT_ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "4000"))
#: Reduced sweeps used by the pytest-benchmark targets (full sweeps are
#: available through ``python benchmarks/report.py``).
BENCH_SEGMENTS = [int(s) for s in os.environ.get("REPRO_BENCH_SEGMENTS", "6,24").split(",")]
BENCH_VARIABLES = [int(v) for v in os.environ.get("REPRO_BENCH_VARIABLES", "10,40,80").split(",")]


@dataclass
class LinregrMeasurement:
    """One cell of the Figure 4 table."""

    segments: int
    variables: int
    version: str
    rows: int
    simulated_parallel_seconds: float
    serial_seconds: float
    wall_seconds: float
    #: Aggregate-pattern-only times from AggregateTimings: the transition /
    #: merge / final phases, excluding scan + projection bookkeeping.  With
    #: the compiled engine the bookkeeping is small and constant, so these
    #: are the right quantities for the Figure 5 speedup *shape* at laptop
    #: scale (the paper isolates the same thing at 10M rows).
    aggregate_serial_seconds: float = 0.0
    aggregate_parallel_seconds: float = 0.0
    #: Real worker-pool execution (``Database(parallel=N)``): pool size and
    #: the *measured* aggregate elapsed time (fan-out wall clock + merge +
    #: final).  ``None``/``0`` when the run was in-process (simulated tier).
    workers: int = 0
    measured_parallel_seconds: Optional[float] = None

    @property
    def speedup(self) -> float:
        """*Simulated* speedup of the aggregation pattern (a model-derived
        ratio: serial fold time over max-per-segment time — not wall clock)."""
        if self.aggregate_parallel_seconds > 0:
            return self.aggregate_serial_seconds / self.aggregate_parallel_seconds
        if self.simulated_parallel_seconds == 0:
            return float(self.segments)
        return self.serial_seconds / self.simulated_parallel_seconds

    @property
    def measured_speedup(self) -> Optional[float]:
        """Measured speedup: serial fold time over real parallel wall clock.

        Only available when the run executed on the worker pool.  Unlike
        :attr:`speedup` the denominator is real elapsed time (dispatch and
        IPC included) — but the numerator sums fold times measured inside
        concurrently contending workers, so treat it as an upper bound; the
        unbiased comparison is a separately-timed serial run of the same
        query (``bench_engine_micro.py --workers`` does that).
        """
        if not self.measured_parallel_seconds:
            return None
        return self.aggregate_serial_seconds / self.measured_parallel_seconds


def build_regression_database(num_rows: int, num_variables: int, *, segments: int = 6,
                              seed: int = 7, workers: int = 0) -> Database:
    """A database with one regression table ``data`` of the requested shape.

    ``workers > 0`` enables the real parallel tier (a persistent worker pool;
    see ``docs/architecture.md``) so sweeps can report measured — not only
    simulated — speedups.
    """
    database = Database(num_segments=segments, parallel=workers)
    data = make_regression(num_rows, num_variables, noise=0.5, seed=seed)
    load_regression_table(database, "data", data)
    return database


def run_linregr(
    database: Database,
    *,
    version: str = "v0.3",
    segments: Optional[int] = None,
) -> LinregrMeasurement:
    """Run one ``SELECT linregr(y, x) FROM data`` and collect the timings."""
    if segments is not None and segments != database.num_segments:
        database.set_num_segments(segments)
    kernel = linear_regression.VERSION_KERNELS[version]
    linear_regression.install_linear_regression(database, kernel=kernel)
    start = time.perf_counter()
    result = database.execute("SELECT linregr(y, x) FROM data")
    wall = time.perf_counter() - start
    stats = result.stats
    timings = stats.aggregate_timings[0]
    num_rows = sum(timings.rows_per_segment)
    variables = len(result.rows[0][0]["coef"])
    return LinregrMeasurement(
        segments=database.num_segments,
        variables=variables,
        version=version,
        rows=num_rows,
        simulated_parallel_seconds=stats.simulated_parallel_seconds,
        serial_seconds=wall,
        wall_seconds=wall,
        aggregate_serial_seconds=timings.serial_seconds,
        aggregate_parallel_seconds=timings.simulated_parallel_seconds,
        workers=timings.num_workers,
        measured_parallel_seconds=timings.measured_parallel_seconds,
    )


def best_linregr(
    database: Database,
    *,
    version: str = "v0.3",
    segments: Optional[int] = None,
    repeats: int = 3,
) -> LinregrMeasurement:
    """Noise-robust measurement: repeat and keep the fastest run.

    The simulated-parallel time is a *max* over per-segment times, which a
    single preemption inflates badly on a shared (or single-core) machine;
    the minimum over a few repeats is the standard estimator for the
    underlying cost.  Used by the speedup-shape assertions.
    """
    measurements = [
        run_linregr(database, version=version, segments=segments) for _ in range(repeats)
    ]
    return min(measurements, key=lambda m: m.aggregate_parallel_seconds)


def sweep_figure4(
    *,
    rows: int = DEFAULT_ROWS,
    segments_list: Sequence[int] = PAPER_SEGMENTS,
    variables_list: Sequence[int] = PAPER_VARIABLES,
    versions: Sequence[str] = PAPER_VERSIONS,
    seed: int = 7,
) -> List[LinregrMeasurement]:
    """The full Figure 4 sweep (reduced row count), one measurement per cell."""
    measurements: List[LinregrMeasurement] = []
    for variables in variables_list:
        database = build_regression_database(rows, variables, segments=segments_list[0], seed=seed)
        for segments in segments_list:
            database.set_num_segments(segments)
            for version in versions:
                measurements.append(run_linregr(database, version=version, segments=segments))
    return measurements


def scale_paper_time(segments: int, variables: int, version: str, *, rows: int) -> Optional[float]:
    """Paper time for a cell, linearly rescaled from 10M rows to ``rows`` rows.

    Only used for side-by-side display; the scaling is in rows only (the k- and
    segment-dependence is what the experiment measures).
    """
    reference = PAPER_FIGURE4.get((segments, variables, version))
    if reference is None:
        return None
    return reference * rows / PAPER_ROWS


def format_table(rows: List[dict], columns: Sequence[str]) -> str:
    """Fixed-width text table used by the report script."""
    widths = {column: len(column) for column in columns}
    rendered_rows = []
    for row in rows:
        rendered = {}
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                text = f"{value:.4g}"
            else:
                text = str(value)
            rendered[column] = text
            widths[column] = max(widths[column], len(text))
        rendered_rows.append(rendered)
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for rendered in rendered_rows:
        lines.append("  ".join(rendered[column].ljust(widths[column]) for column in columns))
    return "\n".join(lines)
